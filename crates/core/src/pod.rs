//! Plain-old-data encoding for values stored in tracked memory.
//!
//! The tracked arena is a byte array; typed access goes through [`Pod`],
//! which defines a fixed-width little-endian encoding. All implementations
//! are safe code — no transmutes — so the crate stays `unsafe`-free.

/// A fixed-size value that can live in tracked memory.
///
/// Implementors define a byte-exact little-endian encoding. The encoding
/// must be *canonical*: `from_le(to_le(v)) == v` and equal values encode to
/// equal bytes, because the runtime detects value changes by comparing
/// encoded bytes (a store whose bytes match the old contents is a *silent
/// store* and fires no trigger).
///
/// This trait is implemented for the primitive integers, `f32`/`f64` and
/// `bool`; downstream code normally never implements it.
///
/// # Examples
///
/// ```
/// use dtt_core::pod::Pod;
/// let mut buf = [0u8; 4];
/// 0xdead_beef_u32.write_le(&mut buf);
/// assert_eq!(u32::read_le(&buf), 0xdead_beef);
/// ```
pub trait Pod: Copy + 'static {
    /// Encoded width in bytes.
    const SIZE: usize;

    /// Encodes `self` into `out`.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != Self::SIZE`.
    fn write_le(self, out: &mut [u8]);

    /// Decodes a value from `bytes`.
    ///
    /// # Panics
    ///
    /// Panics if `bytes.len() != Self::SIZE`.
    fn read_le(bytes: &[u8]) -> Self;
}

macro_rules! impl_pod_int {
    ($($t:ty),*) => {$(
        impl Pod for $t {
            const SIZE: usize = std::mem::size_of::<$t>();

            fn write_le(self, out: &mut [u8]) {
                assert_eq!(out.len(), Self::SIZE, "encode buffer size mismatch");
                out.copy_from_slice(&self.to_le_bytes());
            }

            fn read_le(bytes: &[u8]) -> Self {
                assert_eq!(bytes.len(), Self::SIZE, "decode buffer size mismatch");
                let mut arr = [0u8; std::mem::size_of::<$t>()];
                arr.copy_from_slice(bytes);
                <$t>::from_le_bytes(arr)
            }
        }
    )*};
}

impl_pod_int!(u8, u16, u32, u64, u128, i8, i16, i32, i64, i128, f32, f64);

impl Pod for bool {
    const SIZE: usize = 1;

    fn write_le(self, out: &mut [u8]) {
        assert_eq!(out.len(), 1, "encode buffer size mismatch");
        out[0] = self as u8;
    }

    fn read_le(bytes: &[u8]) -> Self {
        assert_eq!(bytes.len(), 1, "decode buffer size mismatch");
        bytes[0] != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Pod + PartialEq + std::fmt::Debug>(v: T) {
        let mut buf = vec![0u8; T::SIZE];
        v.write_le(&mut buf);
        assert_eq!(T::read_le(&buf), v);
    }

    #[test]
    fn integer_round_trips() {
        round_trip(0u8);
        round_trip(255u8);
        round_trip(0x1234u16);
        round_trip(-5i16);
        round_trip(u32::MAX);
        round_trip(i32::MIN);
        round_trip(u64::MAX / 3);
        round_trip(i64::MIN + 1);
        round_trip(u128::MAX - 7);
        round_trip(i128::MIN);
    }

    #[test]
    fn float_round_trips() {
        round_trip(0.0f32);
        round_trip(-1.5f32);
        round_trip(f32::INFINITY);
        round_trip(std::f64::consts::PI);
        round_trip(f64::NEG_INFINITY);
    }

    #[test]
    fn bool_round_trips() {
        round_trip(true);
        round_trip(false);
    }

    #[test]
    fn encoding_is_little_endian() {
        let mut buf = [0u8; 4];
        1u32.write_le(&mut buf);
        assert_eq!(buf, [1, 0, 0, 0]);
    }

    #[test]
    fn equal_values_encode_identically() {
        // Canonicality matters for silent-store detection.
        let mut a = [0u8; 8];
        let mut b = [0u8; 8];
        42.0f64.write_le(&mut a);
        (21.0f64 * 2.0).write_le(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "encode buffer size mismatch")]
    fn wrong_size_encode_panics() {
        let mut buf = [0u8; 3];
        7u32.write_le(&mut buf);
    }

    #[test]
    #[should_panic(expected = "decode buffer size mismatch")]
    fn wrong_size_decode_panics() {
        u64::read_le(&[0u8; 4]);
    }
}
