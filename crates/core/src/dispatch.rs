//! Lock-free trigger dispatch: the atomic tthread status machine, the
//! sharded pending queue, and the worker eventcount.
//!
//! The HPCA'11 hardware updates its thread status table with single-cycle
//! state transitions; the software runtime originally serialized every one
//! of them — trigger raise, enqueue, dequeue, join-steal, status read — on
//! the global state lock. This module is the software analogue of the
//! hardware TST entry: one packed atomic **status word** per tthread,
//! advanced by compare-and-swap, so the trigger→enqueue→dispatch fast path
//! never touches the state lock.
//!
//! # Status-word layout
//!
//! ```text
//!  63                                    4   3    2   1 0
//! +----------------------------------------+----+----+-----+
//! |                token                   | CJ | RF |state|
//! +----------------------------------------+----+----+-----+
//! ```
//!
//! * **state** (2 bits): [`TthreadStatus`] — Clean / Triggered / Queued /
//!   Running.
//! * **RF** (retrigger flag): a trigger landed while the tthread was
//!   Running (or, with coalescing off, while Queued): the current or next
//!   execution must run again, because it may have read pre-change data.
//! * **CJ** (completed-since-join): an execution committed off the main
//!   thread since the last join — lets the join report `Overlapped`
//!   instead of `Skipped`.
//! * **token** (60 bits): bumped on every *state-changing* transition. A
//!   queue entry carries the token observed when its tthread went Queued;
//!   a worker claims the entry with a CAS conditioned on that exact token,
//!   so an entry whose tthread was stolen by a join (or force) in the
//!   meantime fails validation and is lazily discarded — stale entries
//!   need no queue scan at steal time. The token also prevents ABA on
//!   every other transition.
//!
//! # The absorb rule (why coalescing is an RMW, not a load)
//!
//! A trigger that finds its tthread already Triggered or Queued is
//! *absorbed* — but it must still perform a **successful RMW on the status
//! word** (a value-preserving `compare_exchange(cur, cur)`), never a plain
//! load. The claimer's claim-CAS reads-from the absorbing RMW through the
//! word's modification order, which establishes the happens-before edge
//! from the raiser's (already published) store to the claimed body's
//! loads. A load-only absorb has no such edge: the body could read
//! pre-store data while the trigger was absorbed — a lost update.
//!
//! # Lock order
//!
//! The pending-queue shard mutexes and the eventcount mutex are leaf
//! locks: they may be acquired while holding the state lock (commit-path
//! cascades enqueue under it) but never the other way around, and nothing
//! else is ever acquired under them.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::tthread::TthreadStatus;

const STATE_MASK: u64 = 0b11;
const RF: u64 = 1 << 2;
const CJ: u64 = 1 << 3;
const TOKEN_SHIFT: u32 = 4;
const TOKEN_ONE: u64 = 1 << TOKEN_SHIFT;

/// How long a worker's timed park lasts: long enough to be irrelevant for
/// throughput, short enough that an injected lost wakeup
/// ([`crate::fault::FaultPoint::WakeDrop`]) delays a dispatch instead of
/// wedging the runtime.
pub const PARK_TIMEOUT: Duration = Duration::from_millis(50);

#[inline]
fn state_of(word: u64) -> TthreadStatus {
    match word & STATE_MASK {
        0 => TthreadStatus::Clean,
        1 => TthreadStatus::Triggered,
        2 => TthreadStatus::Queued,
        _ => TthreadStatus::Running,
    }
}

#[inline]
fn state_bits(status: TthreadStatus) -> u64 {
    match status {
        TthreadStatus::Clean => 0,
        TthreadStatus::Triggered => 1,
        TthreadStatus::Queued => 2,
        TthreadStatus::Running => 3,
    }
}

#[inline]
fn token_of(word: u64) -> u64 {
    word >> TOKEN_SHIFT
}

/// A state-changing transition: new state, flags optionally cleared,
/// token bumped.
#[inline]
fn advance(word: u64, to: TthreadStatus, clear_rf: bool, clear_cj: bool) -> u64 {
    let mut w = (word & !STATE_MASK) | state_bits(to);
    if clear_rf {
        w &= !RF;
    }
    if clear_cj {
        w &= !CJ;
    }
    w.wrapping_add(TOKEN_ONE)
}

/// Outcome of one trigger raise against the status word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RaiseStep {
    /// The trigger merged with pending/running work (includes the
    /// deferred-executor Clean→Triggered transition, which needs no queue).
    Absorbed,
    /// Clean→Triggered (deferred executor): nothing to enqueue.
    Deferred,
    /// Clean→Queued: the caller must push `(id, token)` onto the pending
    /// queue (and fall back to its overflow policy if that fails).
    Enqueue(u64),
}

/// One tthread's live dispatch state: the packed status word plus the
/// per-tthread trigger tally (bumped lock-free on every raise).
#[derive(Debug, Default)]
#[repr(align(64))]
pub(crate) struct Slot {
    word: AtomicU64,
    pub(crate) triggers: AtomicU64,
}

impl Slot {
    #[inline]
    fn load(&self) -> u64 {
        self.word.load(Ordering::Acquire)
    }

    #[inline]
    fn cas(&self, cur: u64, new: u64) -> bool {
        self.word
            .compare_exchange(cur, new, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Unconditional read-modify-write; retries until it lands.
    #[inline]
    fn rmw(&self, f: impl Fn(u64) -> u64) -> u64 {
        self.word
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |w| Some(f(w)))
            .expect("fetch_update with Some never fails")
    }

    /// Current status.
    pub(crate) fn status(&self) -> TthreadStatus {
        state_of(self.load())
    }

    /// The raw status word. Because the token bumps on every state-changing
    /// transition, the word doubles as a **generation counter**: a joiner
    /// records it before parking and a changed word proves the tthread
    /// moved (completed, re-triggered, was stolen, ...) since the
    /// observation — the per-tthread completion sequence the lock-free
    /// join parks on.
    pub(crate) fn word(&self) -> u64 {
        self.load()
    }

    /// Whether an off-main-thread execution completed since the last join.
    #[cfg(test)]
    pub(crate) fn completed_since_join(&self) -> bool {
        self.load() & CJ != 0
    }

    /// Advance the status machine for one trigger. `mark_rerun_if_queued`
    /// implements the no-coalescing semantics: a duplicate trigger of a
    /// queued tthread sets RF so the claimed execution runs again, instead
    /// of occupying a second queue slot.
    pub(crate) fn raise(&self, deferred: bool, mark_rerun_if_queued: bool) -> RaiseStep {
        loop {
            let cur = self.load();
            match state_of(cur) {
                TthreadStatus::Running => {
                    if self.cas(cur, cur | RF) {
                        return RaiseStep::Absorbed;
                    }
                }
                TthreadStatus::Triggered => {
                    // Value-preserving RMW: see the module-level absorb rule.
                    if self.cas(cur, cur) {
                        return RaiseStep::Absorbed;
                    }
                }
                TthreadStatus::Queued => {
                    let new = if mark_rerun_if_queued { cur | RF } else { cur };
                    if self.cas(cur, new) {
                        return RaiseStep::Absorbed;
                    }
                }
                TthreadStatus::Clean => {
                    let target = if deferred {
                        TthreadStatus::Triggered
                    } else {
                        TthreadStatus::Queued
                    };
                    let new = advance(cur, target, false, false);
                    if self.cas(cur, new) {
                        return if deferred {
                            RaiseStep::Deferred
                        } else {
                            RaiseStep::Enqueue(token_of(new))
                        };
                    }
                }
            }
        }
    }

    /// Worker-side claim of a popped queue entry: Queued→Running iff the
    /// token still matches — a join/force stole the tthread otherwise and
    /// the entry is stale. RF is preserved (it is the no-coalescing rerun
    /// marker; with coalescing on it is never set while Queued).
    pub(crate) fn try_claim_queued(&self, token: u64) -> bool {
        loop {
            let cur = self.load();
            if state_of(cur) != TthreadStatus::Queued || token_of(cur) != token {
                return false;
            }
            if self.cas(cur, advance(cur, TthreadStatus::Running, false, false)) {
                return true;
            }
        }
    }

    /// Claim into Running iff currently in `from` (join steal, overflow
    /// fallback, force). `clear_rf` absorbs a pending rerun marker into
    /// the claimed execution.
    pub(crate) fn try_claim_from(&self, from: TthreadStatus, clear_rf: bool) -> bool {
        loop {
            let cur = self.load();
            if state_of(cur) != from {
                return false;
            }
            if self.cas(cur, advance(cur, TthreadStatus::Running, clear_rf, false)) {
                return true;
            }
        }
    }

    /// Unconditional claim (locked dispatch mode, where the state lock
    /// already serializes every mutator): → Running, RF absorbed.
    pub(crate) fn claim(&self) {
        self.rmw(|w| advance(w, TthreadStatus::Running, true, false));
    }

    /// Overflow `DeferToJoin`: Queued→Triggered iff the token still
    /// matches (the tthread was not stolen since the failed push).
    pub(crate) fn try_defer_queued(&self, token: u64) -> bool {
        loop {
            let cur = self.load();
            if state_of(cur) != TthreadStatus::Queued || token_of(cur) != token {
                return false;
            }
            if self.cas(cur, advance(cur, TthreadStatus::Triggered, false, false)) {
                return true;
            }
        }
    }

    /// Completion attempt: Running→Clean, publishing the execution.
    /// Returns `false` — with the word left untouched, still Running — if
    /// RF was set by a concurrent trigger: the caller decides between
    /// another body run ([`Slot::absorb_rf`]) and giving up
    /// ([`Slot::complete_to_triggered`]).
    ///
    /// `completed_since_join` sets (`Some(true)`), clears (`Some(false)`)
    /// or preserves (`None`) the CJ flag. Worker completions pass
    /// `Some(true)`; inline runs at a join/force pass `None` so an
    /// overflow-inline execution between a worker's commit and its join
    /// cannot destroy a pending `Overlapped` report.
    pub(crate) fn try_complete(&self, completed_since_join: Option<bool>) -> bool {
        loop {
            let cur = self.load();
            if cur & RF != 0 {
                return false;
            }
            let mut new = advance(
                cur,
                TthreadStatus::Clean,
                false,
                completed_since_join.is_some(),
            );
            if completed_since_join == Some(true) {
                new |= CJ;
            }
            if self.cas(cur, new) {
                return true;
            }
        }
    }

    /// Absorb the retrigger flag into a fresh body run (stays Running).
    pub(crate) fn absorb_rf(&self) {
        self.rmw(|w| advance(w, TthreadStatus::Running, true, false));
    }

    /// Retry-cap exhaustion: Running→Triggered, deferring the rerun to the
    /// next join.
    pub(crate) fn complete_to_triggered(&self) {
        self.rmw(|w| advance(w, TthreadStatus::Triggered, true, true));
    }

    /// Unconditional move to Triggered with flags preserved. Locked-mode
    /// overflow paths (DeferToJoin, backpressure shed) use this after
    /// removing `id`'s queue entries: the word may be Clean (first
    /// trigger) or Queued (duplicate entries just dropped).
    pub(crate) fn force_triggered(&self) {
        self.rmw(|w| advance(w, TthreadStatus::Triggered, false, false));
    }

    /// Unconditional reset to Clean with both flags cleared (poison,
    /// timeout: the execution published nothing).
    pub(crate) fn force_clean(&self) {
        self.rmw(|w| advance(w, TthreadStatus::Clean, true, true));
    }

    /// Injected retrigger ([`crate::fault::FaultPoint::Retrigger`]): set
    /// RF iff still Running.
    pub(crate) fn set_rf_if_running(&self) {
        loop {
            let cur = self.load();
            if state_of(cur) != TthreadStatus::Running || self.cas(cur, cur | RF) {
                return;
            }
        }
    }

    /// Consume the completed-since-join flag if (still) Clean; `None`
    /// means the state moved under the caller, who should re-examine it.
    pub(crate) fn take_completed_if_clean(&self) -> Option<bool> {
        loop {
            let cur = self.load();
            if state_of(cur) != TthreadStatus::Clean {
                return None;
            }
            if self.cas(cur, cur & !CJ) {
                return Some(cur & CJ != 0);
            }
        }
    }

    /// Clears the completed-since-join flag regardless of state (join and
    /// force clear it after an inline run, matching the locked baseline).
    pub(crate) fn clear_completed(&self) {
        self.rmw(|w| w & !CJ);
    }
}

/// Chunked, growable slot table. Chunks are allocated on demand behind
/// `OnceLock`s so `register` (which grows the table) never invalidates
/// references concurrently held by workers — the table itself is
/// lock-free to read.
#[derive(Debug)]
pub(crate) struct SlotTable {
    chunks: Box<[OnceLock<Box<[Slot]>>]>,
}

const CHUNK: usize = 64;
const MAX_CHUNKS: usize = 1024;

impl SlotTable {
    pub(crate) fn new() -> Self {
        SlotTable {
            chunks: (0..MAX_CHUNKS).map(|_| OnceLock::new()).collect(),
        }
    }

    /// Ensures the chunk covering `index` exists (called at registration).
    ///
    /// # Panics
    ///
    /// Panics past `CHUNK * MAX_CHUNKS` tthreads.
    pub(crate) fn ensure(&self, index: usize) {
        let chunk = index / CHUNK;
        assert!(chunk < MAX_CHUNKS, "too many tthreads");
        self.chunks[chunk].get_or_init(|| (0..CHUNK).map(|_| Slot::default()).collect());
    }

    /// The slot for tthread `index`.
    ///
    /// # Panics
    ///
    /// Panics if the index was never registered via [`SlotTable::ensure`].
    pub(crate) fn slot(&self, index: usize) -> &Slot {
        let chunk = self.chunks[index / CHUNK]
            .get()
            .expect("slot accessed before registration");
        &chunk[index % CHUNK]
    }
}

/// Whether a [`ShardedQueue::push`] landed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PendingPush {
    /// The entry was enqueued.
    Pushed,
    /// The queue was at capacity; the caller applies its overflow policy.
    Full,
}

/// One pending-queue shard: `(tthread index, token)` entries in FIFO
/// order, plus a mirror of the deque length maintained under the shard
/// lock so the steal scan and the park predicates can read occupancy
/// without taking any lock.
#[derive(Debug, Default)]
struct PendingShard {
    entries: Mutex<VecDeque<(u32, u64)>>,
    occupancy: AtomicUsize,
}

/// The sharded MPMC pending queue: entries are `(tthread index, token)`
/// pairs, sharded by tthread index. Capacity is enforced globally with
/// an atomic length, so the overflow policy sees the same bound as the
/// locked baseline's single queue.
///
/// # Shard ownership and stealing
///
/// With `W` workers over `S` shards, worker `w` *owns* shards
/// `{s : s mod W == w}` — every shard has exactly one owner, so no entry
/// can be stranded on a shard nobody drains. [`ShardedQueue::pop_local`]
/// pops only owned shards; an idle worker then calls
/// [`ShardedQueue::steal_into`] to migrate a batch from the fullest
/// foreign shard before parking. Cross-shard migration cannot reorder one
/// tthread's executions: the status machine admits at most one live queue
/// entry per tthread (duplicate triggers absorb into RF), and any stale
/// duplicate fails its token validation at claim time — FIFO-per-tthread
/// rests on the ABA tokens, not on queue position.
#[derive(Debug)]
pub(crate) struct ShardedQueue {
    shards: Box<[PendingShard]>,
    mask: usize,
    len: AtomicUsize,
    capacity: usize,
    high: AtomicUsize,
}

impl ShardedQueue {
    /// Creates a queue of `capacity` entries over `shards` shards
    /// (rounded up to a power of two).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub(crate) fn new(capacity: usize, shards: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be nonzero");
        let n = shards.max(1).next_power_of_two();
        ShardedQueue {
            shards: (0..n).map(|_| PendingShard::default()).collect(),
            mask: n - 1,
            len: AtomicUsize::new(0),
            capacity,
            high: AtomicUsize::new(0),
        }
    }

    /// Attempts to enqueue `(id, token)`. Coalescing happens in the status
    /// word before this is called, so every push is a distinct pending
    /// execution.
    pub(crate) fn push(&self, id: u32, token: u64) -> PendingPush {
        // Reserve a slot first so capacity is exact under concurrency.
        if self
            .len
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                (n < self.capacity).then(|| n + 1)
            })
            .is_err()
        {
            return PendingPush::Full;
        }
        let occupied = {
            let shard = &self.shards[id as usize & self.mask];
            let mut entries = shard.entries.lock();
            entries.push_back((id, token));
            shard.occupancy.store(entries.len(), Ordering::Release);
            self.len.load(Ordering::SeqCst)
        };
        self.high.fetch_max(occupied, Ordering::Relaxed);
        PendingPush::Pushed
    }

    /// Pops one entry from shard `s` if it has one.
    fn pop_shard(&self, s: usize) -> Option<(u32, u64)> {
        if self.shards[s].occupancy.load(Ordering::Acquire) == 0 {
            return None;
        }
        let shard = &self.shards[s];
        let mut entries = shard.entries.lock();
        let entry = entries.pop_front()?;
        shard.occupancy.store(entries.len(), Ordering::Release);
        self.len.fetch_sub(1, Ordering::SeqCst);
        Some(entry)
    }

    /// Pops one entry, scanning every shard round-robin from `start` so
    /// callers with different indices drain different shards first. This
    /// is the ownership-blind scan used by the backpressure assist and the
    /// single-consumer paths; workers use [`ShardedQueue::pop_local`].
    pub(crate) fn pop(&self, start: usize) -> Option<(u32, u64)> {
        if self.is_empty() {
            return None;
        }
        for k in 0..self.shards.len() {
            if let Some(entry) = self.pop_shard((start + k) & self.mask) {
                return Some(entry);
            }
        }
        None
    }

    /// Pops one entry from worker `worker`'s own shards (`s mod workers ==
    /// worker`), scanning them round-robin.
    pub(crate) fn pop_local(&self, worker: usize, workers: usize) -> Option<(u32, u64)> {
        let workers = workers.max(1);
        let mut s = worker % workers;
        while s < self.shards.len() {
            if let Some(entry) = self.pop_shard(s) {
                return Some(entry);
            }
            s += workers;
        }
        None
    }

    /// Occupancy of worker `worker`'s own shards — the park predicate for
    /// the no-stealing ablation, where a worker must only wake for work it
    /// is allowed to pop.
    pub(crate) fn local_occupancy(&self, worker: usize, workers: usize) -> usize {
        let workers = workers.max(1);
        let mut total = 0;
        let mut s = worker % workers;
        while s < self.shards.len() {
            total += self.shards[s].occupancy.load(Ordering::Acquire);
            s += workers;
        }
        total
    }

    /// Steals a batch from the fullest *foreign* shard into worker
    /// `worker`'s first own shard: drains half the victim (rounded up),
    /// returns the first stolen entry for immediate execution and the
    /// total number migrated. The two shard locks are never held
    /// simultaneously (drain to a local buffer, release the victim, then
    /// lock the destination), so concurrent stealers cannot deadlock.
    /// Global `len` is untouched except for the returned entry, which is
    /// popped.
    pub(crate) fn steal_into(&self, worker: usize, workers: usize) -> Option<((u32, u64), usize)> {
        let workers = workers.max(1);
        // Pick the fullest shard owned by someone else (relaxed scan; a
        // stale read only costs a wasted lock or a missed victim, and the
        // timed park bounds the miss).
        let mut victim = None;
        let mut best = 0;
        for (s, shard) in self.shards.iter().enumerate() {
            if s % workers == worker % workers {
                continue;
            }
            let occ = shard.occupancy.load(Ordering::Acquire);
            if occ > best {
                best = occ;
                victim = Some(s);
            }
        }
        let victim = victim?;
        let mut batch = {
            let shard = &self.shards[victim];
            let mut entries = shard.entries.lock();
            let take = entries.len().div_ceil(2);
            let batch: Vec<(u32, u64)> = entries.drain(..take).collect();
            shard.occupancy.store(entries.len(), Ordering::Release);
            batch
        };
        if batch.is_empty() {
            return None;
        }
        let first = batch.remove(0);
        self.len.fetch_sub(1, Ordering::SeqCst);
        let moved = 1 + batch.len();
        if !batch.is_empty() {
            let dest = &self.shards[worker % workers];
            let mut entries = dest.entries.lock();
            entries.extend(batch);
            dest.occupancy.store(entries.len(), Ordering::Release);
        }
        Some((first, moved))
    }

    /// Entries currently queued (including not-yet-skipped stale ones).
    pub(crate) fn len(&self) -> usize {
        self.len.load(Ordering::SeqCst)
    }

    /// Counts the entries physically present in the shards, under their
    /// locks. At any quiescent point this must equal [`ShardedQueue::len`]
    /// — the consistency check the proptest suite asserts to rule out
    /// double-decrements on the stale-skip and overflow paths.
    pub(crate) fn physical_len(&self) -> usize {
        self.shards.iter().map(|s| s.entries.lock().len()).sum()
    }

    /// Whether the queue is empty.
    pub(crate) fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The capacity bound.
    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    /// The highest occupancy ever reached.
    pub(crate) fn high_watermark(&self) -> usize {
        self.high.load(Ordering::Relaxed)
    }
}

/// How one [`Waiters::park`] call ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ParkOutcome {
    /// The caller never slept: work was already available, a wake raced
    /// in between the epoch read and the sleep commit, or the eventcount
    /// is closed.
    Skipped,
    /// Slept and was woken by a notification before the timeout.
    Woken,
    /// Slept until the timeout elapsed — the dropped-wake rescue path.
    TimedOut,
}

/// The worker eventcount: producers bump an epoch and wake at most one
/// parked worker per enqueued unit; consumers validate the epoch under the
/// mutex before sleeping, so a wake between "queue looked empty" and
/// "committed to sleep" is never lost. Parks are *timed*
/// ([`PARK_TIMEOUT`]) as a belt-and-braces bound: an injected lost wakeup
/// ([`crate::fault::FaultPoint::WakeDrop`]) delays a dispatch by at most
/// one park period. [`Waiters::close`] latches the eventcount shut for
/// shutdown: every parked waiter is broadcast awake and later park
/// attempts return immediately, so quiesce never rides out a park period.
#[derive(Debug, Default)]
pub(crate) struct Waiters {
    epoch: AtomicU64,
    sleepers: AtomicUsize,
    closed: AtomicBool,
    lock: Mutex<()>,
    cv: Condvar,
}

impl Waiters {
    /// Wakes at most one parked worker. Returns whether a notification was
    /// actually sent (no sleeper → no syscall, no wake).
    pub(crate) fn wake_one(&self) -> bool {
        self.epoch.fetch_add(1, Ordering::SeqCst);
        if self.sleepers.load(Ordering::SeqCst) == 0 {
            return false;
        }
        let _g = self.lock.lock();
        self.cv.notify_one();
        true
    }

    /// Wakes every parked worker.
    pub(crate) fn wake_all(&self) {
        self.epoch.fetch_add(1, Ordering::SeqCst);
        let _g = self.lock.lock();
        self.cv.notify_all();
    }

    /// Latches the eventcount shut (idempotent) and broadcasts to every
    /// parked waiter: the dedicated shutdown wake. A closed eventcount
    /// refuses all future parks, so a worker that re-checks the shutdown
    /// flag after a failed park can never sleep through quiesce.
    pub(crate) fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
        self.wake_all();
    }

    /// Whether [`Waiters::close`] has been called.
    pub(crate) fn is_closed(&self) -> bool {
        self.closed.load(Ordering::SeqCst)
    }

    /// How many callers are currently committed to sleep. A point-in-time
    /// read, used for wake accounting and by tests that need to observe a
    /// parked joiner from outside.
    pub(crate) fn sleeping(&self) -> usize {
        self.sleepers.load(Ordering::SeqCst)
    }

    /// Parks the caller until woken, the timeout elapses, or
    /// `work_available` turns true. The outcome distinguishes a real wake
    /// from a timeout expiry so callers can count rescue wakes
    /// separately.
    pub(crate) fn park(&self, work_available: impl Fn() -> bool, timeout: Duration) -> ParkOutcome {
        let epoch = self.epoch.load(Ordering::SeqCst);
        if work_available() || self.is_closed() {
            return ParkOutcome::Skipped;
        }
        let mut guard = self.lock.lock();
        // Announce, then validate: a producer either sees the sleeper
        // count and notifies, or its epoch bump is visible here and the
        // sleep is abandoned (SeqCst makes one of the two certain). A
        // concurrent close() bumps the epoch too, so a closing race is
        // caught by the same validation.
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        if self.epoch.load(Ordering::SeqCst) != epoch {
            self.sleepers.fetch_sub(1, Ordering::SeqCst);
            return ParkOutcome::Skipped;
        }
        let timed_out = self.cv.wait_for(&mut guard, timeout);
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
        if timed_out {
            ParkOutcome::TimedOut
        } else {
            ParkOutcome::Woken
        }
    }
}

/// Sharded dispatch-side counters, mirroring
/// [`crate::stats::AccessCounters`]: bumped lock-free on the raise path,
/// folded into [`crate::stats::Counters`] on demand.
#[derive(Debug)]
pub(crate) struct DispatchCounters {
    slots: Box<[DispatchCounterSlot]>,
    mask: usize,
}

#[derive(Debug, Default)]
#[repr(align(64))]
struct DispatchCounterSlot {
    triggering_stores: AtomicU64,
    triggers_fired: AtomicU64,
    false_triggers: AtomicU64,
    coalesced_triggers: AtomicU64,
    enqueues: AtomicU64,
    worker_wakes: AtomicU64,
    worker_parks: AtomicU64,
    queue_stale_skips: AtomicU64,
    steals: AtomicU64,
    steal_batches: AtomicU64,
    park_timeouts: AtomicU64,
}

const COUNTER_SLOTS: usize = 8;

impl DispatchCounters {
    pub(crate) fn new() -> Self {
        DispatchCounters {
            slots: (0..COUNTER_SLOTS)
                .map(|_| DispatchCounterSlot::default())
                .collect(),
            mask: COUNTER_SLOTS - 1,
        }
    }

    #[inline]
    fn slot(&self, key: usize) -> &DispatchCounterSlot {
        &self.slots[key & self.mask]
    }

    #[inline]
    pub(crate) fn triggering_store(&self, key: usize) {
        self.slot(key)
            .triggering_stores
            .fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn trigger_fired(&self, key: usize, precise: bool) {
        let s = self.slot(key);
        s.triggers_fired.fetch_add(1, Ordering::Relaxed);
        if !precise {
            s.false_triggers.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[inline]
    pub(crate) fn coalesced(&self, key: usize) {
        self.slot(key)
            .coalesced_triggers
            .fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn enqueued(&self, key: usize) {
        self.slot(key).enqueues.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn worker_wake(&self, key: usize) {
        self.slot(key).worker_wakes.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn worker_park(&self, key: usize) {
        self.slot(key).worker_parks.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn stale_skip(&self, key: usize) {
        self.slot(key)
            .queue_stale_skips
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Accounts one steal batch that migrated `moved` entries.
    #[inline]
    pub(crate) fn stole(&self, key: usize, moved: u64) {
        let s = self.slot(key);
        s.steals.fetch_add(moved, Ordering::Relaxed);
        s.steal_batches.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn park_timeout(&self, key: usize) {
        self.slot(key).park_timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds the sharded tallies into `stats`.
    pub(crate) fn fold_into(&self, stats: &mut crate::stats::Counters) {
        for s in self.slots.iter() {
            stats.triggering_stores += s.triggering_stores.load(Ordering::Relaxed);
            stats.triggers_fired += s.triggers_fired.load(Ordering::Relaxed);
            stats.false_triggers += s.false_triggers.load(Ordering::Relaxed);
            stats.coalesced_triggers += s.coalesced_triggers.load(Ordering::Relaxed);
            stats.enqueues += s.enqueues.load(Ordering::Relaxed);
            stats.worker_wakes += s.worker_wakes.load(Ordering::Relaxed);
            stats.worker_parks += s.worker_parks.load(Ordering::Relaxed);
            stats.queue_stale_skips += s.queue_stale_skips.load(Ordering::Relaxed);
            stats.steals += s.steals.load(Ordering::Relaxed);
            stats.steal_batches += s.steal_batches.load(Ordering::Relaxed);
            stats.park_timeouts += s.park_timeouts.load(Ordering::Relaxed);
        }
    }

    /// Zeroes every tally.
    pub(crate) fn reset(&self) {
        for s in self.slots.iter() {
            s.triggering_stores.store(0, Ordering::Relaxed);
            s.triggers_fired.store(0, Ordering::Relaxed);
            s.false_triggers.store(0, Ordering::Relaxed);
            s.coalesced_triggers.store(0, Ordering::Relaxed);
            s.enqueues.store(0, Ordering::Relaxed);
            s.worker_wakes.store(0, Ordering::Relaxed);
            s.worker_parks.store(0, Ordering::Relaxed);
            s.queue_stale_skips.store(0, Ordering::Relaxed);
            s.steals.store(0, Ordering::Relaxed);
            s.steal_batches.store(0, Ordering::Relaxed);
            s.park_timeouts.store(0, Ordering::Relaxed);
        }
    }
}

/// Everything the lock-free dispatch path owns, grouped in
/// [`crate::runtime::Inner`].
#[derive(Debug)]
pub(crate) struct Dispatch {
    pub(crate) slots: SlotTable,
    pub(crate) pending: ShardedQueue,
    pub(crate) waiters: Waiters,
    /// The completion eventcount lock-free joins park on: workers (and
    /// inline completions) broadcast here after any transition out of
    /// Running, and a joiner validates "the status word moved" before
    /// committing to sleep — the join-side analogue of the worker
    /// eventcount, with the slot token as the generation counter.
    pub(crate) completions: Waiters,
    pub(crate) counters: DispatchCounters,
}

impl Dispatch {
    pub(crate) fn new(queue_capacity: usize, queue_shards: usize) -> Self {
        Dispatch {
            slots: SlotTable::new(),
            pending: ShardedQueue::new(queue_capacity, queue_shards),
            waiters: Waiters::default(),
            completions: Waiters::default(),
            counters: DispatchCounters::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tthread::TthreadStatus as S;

    fn slot() -> Slot {
        Slot::default()
    }

    #[test]
    fn word_starts_clean() {
        let s = slot();
        assert_eq!(s.status(), S::Clean);
        assert!(!s.completed_since_join());
    }

    #[test]
    fn raise_from_clean_enqueues_with_fresh_token() {
        let s = slot();
        let RaiseStep::Enqueue(t1) = s.raise(false, false) else {
            panic!("expected enqueue");
        };
        assert_eq!(s.status(), S::Queued);
        // A second raise absorbs; the token must NOT move, or the queue
        // entry would go permanently stale and strand the tthread.
        assert_eq!(s.raise(false, false), RaiseStep::Absorbed);
        assert!(s.try_claim_queued(t1), "absorb must not invalidate token");
        assert_eq!(s.status(), S::Running);
    }

    #[test]
    fn deferred_raise_goes_triggered_without_queueing() {
        let s = slot();
        assert_eq!(s.raise(true, false), RaiseStep::Deferred);
        assert_eq!(s.status(), S::Triggered);
        assert_eq!(s.raise(true, false), RaiseStep::Absorbed);
        assert_eq!(s.status(), S::Triggered);
    }

    #[test]
    fn raise_while_running_sets_retrigger() {
        let s = slot();
        let RaiseStep::Enqueue(t) = s.raise(false, false) else {
            panic!()
        };
        assert!(s.try_claim_queued(t));
        assert_eq!(s.raise(false, false), RaiseStep::Absorbed);
        // RF set: completion must fail and leave the word Running.
        assert!(!s.try_complete(Some(true)));
        assert_eq!(s.status(), S::Running);
        s.absorb_rf();
        assert!(s.try_complete(Some(true)));
        assert_eq!(s.status(), S::Clean);
        assert!(s.completed_since_join());
    }

    #[test]
    fn steal_invalidates_the_queue_entry() {
        // The deterministic steal race: raise queues (id, t); a join
        // steals via try_claim_from; the worker's later claim with t must
        // fail — the entry is stale, not a double execution.
        let s = slot();
        let RaiseStep::Enqueue(t) = s.raise(false, false) else {
            panic!()
        };
        assert!(s.try_claim_from(S::Queued, false));
        assert!(!s.try_claim_queued(t), "stale entry must not claim");
        assert!(s.try_complete(Some(false)));
        assert_eq!(s.status(), S::Clean);
        // And the other direction: the worker claims first, the join's
        // conditional claim from Queued fails and re-examines.
        let RaiseStep::Enqueue(t2) = s.raise(false, false) else {
            panic!()
        };
        assert!(s.try_claim_queued(t2));
        assert!(!s.try_claim_from(S::Queued, false));
    }

    #[test]
    fn no_coalescing_marks_rerun_instead_of_requeueing() {
        let s = slot();
        let RaiseStep::Enqueue(t) = s.raise(false, true) else {
            panic!()
        };
        // Duplicate trigger while queued: RF marks the rerun.
        assert_eq!(s.raise(false, true), RaiseStep::Absorbed);
        // The claim preserves RF, so the execution runs twice.
        assert!(s.try_claim_queued(t));
        assert!(!s.try_complete(Some(true)));
        s.absorb_rf();
        assert!(s.try_complete(Some(true)));
    }

    #[test]
    fn defer_queued_is_token_guarded() {
        let s = slot();
        let RaiseStep::Enqueue(t) = s.raise(false, false) else {
            panic!()
        };
        assert!(s.try_defer_queued(t));
        assert_eq!(s.status(), S::Triggered);
        // Stale token: no-op.
        assert!(!s.try_defer_queued(t));
    }

    #[test]
    fn completed_flag_is_consumed_by_join() {
        let s = slot();
        let RaiseStep::Enqueue(t) = s.raise(false, false) else {
            panic!()
        };
        assert!(s.try_claim_queued(t));
        assert!(s.try_complete(Some(true)));
        assert_eq!(s.take_completed_if_clean(), Some(true));
        assert_eq!(s.take_completed_if_clean(), Some(false));
        let RaiseStep::Enqueue(_) = s.raise(false, false) else {
            panic!()
        };
        assert_eq!(s.take_completed_if_clean(), None);
    }

    #[test]
    fn inline_completion_preserves_pending_overlap() {
        // A worker completes (CJ set); before the join consumes it, a new
        // trigger fires and an inline run (overflow/force) completes with
        // `None`. That run must not destroy the pending CJ — the join still
        // owes the program an `Overlapped` outcome.
        let s = slot();
        let RaiseStep::Enqueue(t) = s.raise(false, false) else {
            panic!()
        };
        assert!(s.try_claim_queued(t));
        assert!(s.try_complete(Some(true)));
        assert!(s.completed_since_join());
        let RaiseStep::Enqueue(t2) = s.raise(false, false) else {
            panic!()
        };
        assert!(s.try_claim_queued(t2));
        assert!(s.try_complete(None));
        assert!(s.completed_since_join(), "None must preserve CJ");
        assert_eq!(s.take_completed_if_clean(), Some(true));
    }

    #[test]
    fn force_clean_resets_flags() {
        let s = slot();
        let RaiseStep::Enqueue(t) = s.raise(false, false) else {
            panic!()
        };
        assert!(s.try_claim_queued(t));
        assert_eq!(s.raise(false, false), RaiseStep::Absorbed); // RF
        s.force_clean();
        assert_eq!(s.status(), S::Clean);
        assert!(!s.completed_since_join());
        // RF was discarded: completion state machine is reusable.
        let RaiseStep::Enqueue(t2) = s.raise(false, false) else {
            panic!()
        };
        assert!(s.try_claim_queued(t2));
        assert!(s.try_complete(Some(false)));
    }

    #[test]
    fn exhausted_completion_defers_to_join() {
        let s = slot();
        let RaiseStep::Enqueue(t) = s.raise(false, false) else {
            panic!()
        };
        assert!(s.try_claim_queued(t));
        assert_eq!(s.raise(false, false), RaiseStep::Absorbed);
        assert!(!s.try_complete(Some(true)));
        s.complete_to_triggered();
        assert_eq!(s.status(), S::Triggered);
        assert!(!s.completed_since_join());
    }

    #[test]
    fn word_changes_on_every_state_transition() {
        // The generation-counter property the lock-free join parks on: any
        // transition out of an observed state changes the raw word.
        let s = slot();
        let observed = s.word();
        let RaiseStep::Enqueue(t) = s.raise(false, false) else {
            panic!()
        };
        assert_ne!(s.word(), observed);
        let observed = s.word();
        assert!(s.try_claim_queued(t));
        assert_ne!(s.word(), observed);
        let observed = s.word();
        assert!(s.try_complete(Some(true)));
        assert_ne!(s.word(), observed, "completion must move the word");
        // Consuming CJ at the join changes the word again (flag bit).
        let observed = s.word();
        assert_eq!(s.take_completed_if_clean(), Some(true));
        assert_ne!(s.word(), observed);
    }

    #[test]
    fn slot_table_grows_in_chunks() {
        let t = SlotTable::new();
        for i in 0..(CHUNK * 2 + 3) {
            t.ensure(i);
        }
        let RaiseStep::Enqueue(_) = t.slot(CHUNK * 2 + 2).raise(false, false) else {
            panic!()
        };
        assert_eq!(t.slot(CHUNK * 2 + 2).status(), S::Queued);
        assert_eq!(t.slot(0).status(), S::Clean);
    }

    #[test]
    fn sharded_queue_capacity_and_watermark() {
        let q = ShardedQueue::new(2, 4);
        assert_eq!(q.push(0, 1), PendingPush::Pushed);
        assert_eq!(q.push(1, 1), PendingPush::Pushed);
        assert_eq!(q.push(2, 1), PendingPush::Full);
        assert_eq!(q.len(), 2);
        assert_eq!(q.high_watermark(), 2);
        assert!(q.pop(0).is_some());
        assert_eq!(q.push(2, 1), PendingPush::Pushed);
        let mut drained = Vec::new();
        while let Some(e) = q.pop(0) {
            drained.push(e);
        }
        assert_eq!(drained.len(), 2);
        assert!(q.is_empty());
        assert_eq!(q.high_watermark(), 2);
    }

    #[test]
    fn sharded_queue_keeps_per_tthread_fifo() {
        let q = ShardedQueue::new(16, 4);
        // Same id → same shard → FIFO per tthread.
        q.push(5, 1);
        q.push(5, 2);
        q.push(5, 3);
        let mut tokens = Vec::new();
        while let Some((id, tok)) = q.pop(3) {
            assert_eq!(id, 5);
            tokens.push(tok);
        }
        assert_eq!(tokens, vec![1, 2, 3]);
    }

    #[test]
    fn pop_local_respects_shard_ownership() {
        // 4 shards, 2 workers: worker 0 owns shards {0, 2}, worker 1 owns
        // {1, 3}. Ids map to shards by id & 3.
        let q = ShardedQueue::new(16, 4);
        q.push(0, 1); // shard 0
        q.push(1, 1); // shard 1
        q.push(2, 1); // shard 2
        q.push(3, 1); // shard 3
        let mut w0 = Vec::new();
        while let Some((id, _)) = q.pop_local(0, 2) {
            w0.push(id);
        }
        assert_eq!(w0, vec![0, 2]);
        assert_eq!(q.local_occupancy(0, 2), 0);
        assert_eq!(q.local_occupancy(1, 2), 2);
        let mut w1 = Vec::new();
        while let Some((id, _)) = q.pop_local(1, 2) {
            w1.push(id);
        }
        assert_eq!(w1, vec![1, 3]);
        assert!(q.is_empty());
    }

    #[test]
    fn every_shard_has_an_owner_when_workers_do_not_divide_shards() {
        // 8 shards, 3 workers: ownership is s mod 3, so shards 6 and 7
        // fall to workers 0 and 1 — nothing is stranded.
        let q = ShardedQueue::new(64, 8);
        for id in 0..8u32 {
            q.push(id, 1);
        }
        let mut drained = 0;
        for w in 0..3 {
            while q.pop_local(w, 3).is_some() {
                drained += 1;
            }
        }
        assert_eq!(drained, 8);
    }

    #[test]
    fn steal_takes_half_of_the_fullest_foreign_shard() {
        // 4 shards, 4 workers: worker 3 owns shard 3, which is empty;
        // shard 1 (worker 1's) is the fullest victim with 5 entries.
        let q = ShardedQueue::new(64, 4);
        for t in 1..=5u64 {
            q.push(1, t);
        }
        q.push(0, 9);
        assert!(q.pop_local(3, 4).is_none());
        let ((id, tok), moved) = q.steal_into(3, 4).expect("victim available");
        assert_eq!((id, tok), (1, 1), "steal preserves the victim's FIFO");
        assert_eq!(moved, 3, "half of 5, rounded up");
        // The rest of the batch landed on worker 3's own shard, in order.
        assert_eq!(q.pop_local(3, 4), Some((1, 2)));
        assert_eq!(q.pop_local(3, 4), Some((1, 3)));
        assert!(q.pop_local(3, 4).is_none());
        // The victim kept its tail, still in order.
        assert_eq!(q.pop_local(1, 4), Some((1, 4)));
        assert_eq!(q.pop_local(1, 4), Some((1, 5)));
        // Global accounting held throughout.
        assert_eq!(q.len(), 1);
        assert_eq!(q.physical_len(), 1);
        assert_eq!(q.pop_local(0, 4), Some((0, 9)));
        assert!(q.is_empty());
    }

    #[test]
    fn steal_finds_nothing_when_only_own_shards_hold_work() {
        let q = ShardedQueue::new(16, 4);
        q.push(2, 1); // shard 2, owned by worker 2 of 4
        assert!(q.steal_into(2, 4).is_none());
        assert_eq!(q.len(), 1);
        assert_eq!(q.physical_len(), 1);
    }

    #[test]
    fn physical_len_matches_atomic_len_through_mixed_traffic() {
        let q = ShardedQueue::new(8, 4);
        for id in 0..8u32 {
            assert_eq!(q.push(id, u64::from(id)), PendingPush::Pushed);
        }
        assert_eq!(q.push(8, 8), PendingPush::Full);
        assert_eq!(q.physical_len(), q.len());
        q.pop(0);
        q.pop_local(1, 2);
        q.steal_into(0, 4);
        assert_eq!(q.physical_len(), q.len());
        while q.pop(0).is_some() {}
        assert_eq!(q.physical_len(), 0);
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn waiters_wake_without_sleeper_is_cheap() {
        let w = Waiters::default();
        assert!(!w.wake_one(), "no sleeper: no notification");
    }

    #[test]
    fn park_bails_when_work_arrives_first() {
        let w = Waiters::default();
        assert_eq!(
            w.park(|| true, Duration::from_millis(1)),
            ParkOutcome::Skipped
        );
    }

    #[test]
    fn park_times_out_without_a_wake() {
        let w = Waiters::default();
        let t0 = std::time::Instant::now();
        assert_eq!(
            w.park(|| false, Duration::from_millis(5)),
            ParkOutcome::TimedOut
        );
        assert!(t0.elapsed() >= Duration::from_millis(4));
    }

    #[test]
    fn closed_waiters_refuse_to_park() {
        let w = Waiters::default();
        assert!(!w.is_closed());
        w.close();
        assert!(w.is_closed());
        let t0 = std::time::Instant::now();
        assert_eq!(
            w.park(|| false, Duration::from_millis(200)),
            ParkOutcome::Skipped
        );
        assert!(t0.elapsed() < Duration::from_millis(100));
        // Idempotent.
        w.close();
        assert!(w.is_closed());
    }

    #[test]
    fn close_wakes_a_parked_waiter_promptly() {
        let w = Waiters::default();
        std::thread::scope(|s| {
            let h = s.spawn(|| w.park(|| false, Duration::from_secs(5)));
            while w.sleepers.load(Ordering::SeqCst) == 0 {
                std::thread::yield_now();
            }
            let t0 = std::time::Instant::now();
            w.close();
            assert_eq!(h.join().unwrap(), ParkOutcome::Woken);
            assert!(t0.elapsed() < Duration::from_millis(500));
        });
    }

    #[test]
    fn park_abandons_sleep_after_missed_epoch() {
        let w = Waiters::default();
        // A wake between the epoch read and the commit is detected; the
        // test drives it by pre-bumping through wake_one.
        let epoch_before = w.epoch.load(Ordering::SeqCst);
        w.wake_one();
        assert_ne!(w.epoch.load(Ordering::SeqCst), epoch_before);
        // park() reads the *current* epoch, so it still sleeps; exercise
        // the cross-thread variant instead.
        let parked = std::thread::scope(|s| {
            let h = s.spawn(|| w.park(|| false, Duration::from_millis(200)));
            // Give the parker a moment, then wake it.
            while w.sleepers.load(Ordering::SeqCst) == 0 {
                std::thread::yield_now();
            }
            let t0 = std::time::Instant::now();
            assert!(w.wake_one());
            let parked = h.join().unwrap();
            assert!(t0.elapsed() < Duration::from_millis(150));
            parked
        });
        assert_eq!(parked, ParkOutcome::Woken);
    }

    #[test]
    fn dispatch_counters_fold_and_reset() {
        let c = DispatchCounters::new();
        for i in 0..20 {
            c.triggering_store(i);
            c.trigger_fired(i, i % 2 == 0);
            c.coalesced(i);
            c.enqueued(i);
            c.worker_wake(i);
            c.worker_park(i);
            c.stale_skip(i);
            c.stole(i, 3);
            c.park_timeout(i);
        }
        let mut stats = crate::stats::Counters::new();
        c.fold_into(&mut stats);
        assert_eq!(stats.triggering_stores, 20);
        assert_eq!(stats.triggers_fired, 20);
        assert_eq!(stats.false_triggers, 10);
        assert_eq!(stats.coalesced_triggers, 20);
        assert_eq!(stats.enqueues, 20);
        assert_eq!(stats.worker_wakes, 20);
        assert_eq!(stats.worker_parks, 20);
        assert_eq!(stats.queue_stale_skips, 20);
        assert_eq!(stats.steals, 60);
        assert_eq!(stats.steal_batches, 20);
        assert_eq!(stats.park_timeouts, 20);
        c.reset();
        let mut stats = crate::stats::Counters::new();
        c.fold_into(&mut stats);
        assert_eq!(stats.triggers_fired, 0);
    }
}
