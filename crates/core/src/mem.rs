//! Sharded tracked memory: the concurrent store/load hot path.
//!
//! [`ShardedMem`] plays the same role as [`crate::heap::TrackedHeap`] — a
//! growable, bounds-checked arena with change-detecting stores — but is
//! accessed through `&self` from many threads at once. The paper's hardware
//! performs the value compare on *every* store without serializing the
//! pipeline; the software analogue is that tracked loads and stores must not
//! take the runtime's global state lock.
//!
//! # Design
//!
//! The crate forbids `unsafe`, so the arena is built from [`AtomicU64`]
//! words:
//!
//! * **Word storage** — byte writes are word-level read-modify-writes with
//!   [`Ordering::Relaxed`]; the stripe lock (below) provides the exclusivity
//!   and the happens-before edges, the atomics only make the cells shareable
//!   under `&self`.
//! * **Striped locks** — the address space is divided into 64-byte
//!   *stripes*; stripe `s` hashes to lock `s % shards` (shards is a power of
//!   two). A store locks the stripes its range covers, in ascending lock
//!   order, so stores to different stripes proceed in parallel while stores
//!   to the same stripe — including the compare half of silent-store
//!   detection — are atomic.
//! * **Growth** — words live in fixed-size chunks initialized lazily by
//!   [`ShardedMem::alloc`] ([`OnceLock`] per chunk, `alloc` itself behind a
//!   dedicated mutex), so the access path reaches any allocated word with a
//!   lock-free chunk lookup: growth never moves existing words and the hot
//!   path never touches an arena-wide lock. `shards = 1` degenerates to a
//!   single stripe lock covering all of memory, reproducing the serialized
//!   pre-sharding behaviour (the ablation baseline).
//!
//! Lock ordering: the runtime's state lock, when held, is always acquired
//! *before* stripe locks, and stripe locks are never held while acquiring
//! the state lock — see `crates/core/src/accessor.rs` for the access-side
//! protocol.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use parking_lot::{Mutex, MutexGuard};

use crate::addr::{Addr, AddrRange};
use crate::error::{Error, Result};
use crate::heap::{StoreEffect, TrackedHeap};
use crate::pod::Pod;

/// Bytes per lock stripe (one cache line).
const STRIPE_SHIFT: u32 = 6;

/// Words per storage chunk (2^16 words = 512 KiB of tracked memory).
const CHUNK_WORDS_SHIFT: u32 = 16;
const CHUNK_WORDS: u64 = 1 << CHUNK_WORDS_SHIFT;

/// The sharded arena. See the module docs for the locking protocol.
pub(crate) struct ShardedMem {
    /// Word storage in fixed-size chunks, initialized by `alloc` as the
    /// arena grows; accesses reach a word through a lock-free
    /// `OnceLock::get`, and existing words never move.
    chunks: Box<[OnceLock<Box<[AtomicU64]>>]>,
    /// Bytes currently allocated (monotonically increasing).
    len: AtomicU64,
    /// Capacity bound in bytes.
    capacity: u64,
    /// Serializes `alloc` (length bump + chunk initialization).
    alloc_lock: Mutex<()>,
    /// Stripe locks; length is a power of two.
    locks: Box<[Mutex<()>]>,
    /// `locks.len() - 1`, for mask-based stripe hashing.
    mask: u64,
    /// Use the vectorized 64-byte-line change-detection loop in
    /// [`ShardedMem::store_elems`] ([`crate::config::Config::simd_store`]);
    /// off restores the word-at-a-time scalar path as an ablation.
    simd: bool,
}

impl std::fmt::Debug for ShardedMem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedMem")
            .field("len", &self.len())
            .field("capacity", &self.capacity)
            .field("shards", &self.locks.len())
            .finish()
    }
}

/// Stripe locks held for the duration of one access. The single-lock case
/// (every scalar store: alignment keeps values inside one stripe) avoids
/// heap allocation entirely.
enum StripeGuards<'a> {
    None,
    One(#[allow(dead_code)] MutexGuard<'a, ()>),
    Many(#[allow(dead_code)] Vec<MutexGuard<'a, ()>>),
}

impl ShardedMem {
    /// Creates an empty arena bounded at `capacity` bytes with `shards`
    /// stripe locks (rounded up to a power of two, minimum 1). `simd_store`
    /// selects the vectorized bulk change-detection loop.
    pub(crate) fn new(capacity: u64, shards: usize, simd_store: bool) -> Self {
        let shards = shards.max(1).next_power_of_two();
        let nchunks = capacity.div_ceil(8).div_ceil(CHUNK_WORDS) as usize;
        ShardedMem {
            chunks: (0..nchunks).map(|_| OnceLock::new()).collect(),
            len: AtomicU64::new(0),
            capacity,
            alloc_lock: Mutex::new(()),
            locks: (0..shards).map(|_| Mutex::new(())).collect(),
            mask: (shards - 1) as u64,
            simd: simd_store,
        }
    }

    /// The word at index `w`. Lock-free; panics if `w` lies beyond the
    /// allocated length (every caller bounds-checks through `check_range`
    /// first, and `alloc` initializes all chunks up to the new length).
    #[inline]
    fn word(&self, w: u64) -> &AtomicU64 {
        let chunk = self.chunks[(w >> CHUNK_WORDS_SHIFT) as usize]
            .get()
            .expect("access to unallocated arena chunk");
        &chunk[(w & (CHUNK_WORDS - 1)) as usize]
    }

    /// Number of stripe locks.
    pub(crate) fn shards(&self) -> usize {
        self.locks.len()
    }

    /// The stripe (shard) index an address hashes to — also the index of
    /// the observability event ring store events to that address use, so
    /// threads writing disjoint shards record into disjoint rings.
    pub(crate) fn shard_of(&self, addr: Addr) -> usize {
        ((addr.raw() >> STRIPE_SHIFT) & self.mask) as usize
    }

    /// Bytes currently allocated.
    pub(crate) fn len(&self) -> u64 {
        self.len.load(Ordering::Acquire)
    }

    /// The configured capacity bound in bytes.
    pub(crate) fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Allocates `len` zeroed bytes aligned to `align`; same contract as
    /// [`TrackedHeap::alloc`].
    pub(crate) fn alloc(&self, len: u64, align: u64) -> Result<Addr> {
        assert!(
            align > 0 && align.is_power_of_two(),
            "alignment must be a nonzero power of two"
        );
        let _g = self.alloc_lock.lock();
        let base = self.len.load(Ordering::Relaxed).div_ceil(align) * align;
        let available = self.capacity.saturating_sub(base);
        let end = base.checked_add(len).ok_or(Error::ArenaExhausted {
            requested: len,
            available,
        })?;
        if end > self.capacity {
            return Err(Error::ArenaExhausted {
                requested: len,
                available,
            });
        }
        // Materialize every chunk covering the new length (the last chunk of
        // the arena may be partial).
        let cap_words = self.capacity.div_ceil(8);
        for ci in 0..end.div_ceil(8).div_ceil(CHUNK_WORDS) {
            self.chunks[ci as usize].get_or_init(|| {
                let size = (cap_words - ci * CHUNK_WORDS).min(CHUNK_WORDS) as usize;
                (0..size).map(|_| AtomicU64::new(0)).collect()
            });
        }
        self.len.store(end, Ordering::Release);
        Ok(Addr::new(base))
    }

    /// Checks that `range` lies inside the allocated arena; same contract as
    /// [`TrackedHeap::check_range`].
    pub(crate) fn check_range(&self, range: AddrRange) -> Result<()> {
        let len = self.len();
        if range.end().raw() <= len {
            Ok(())
        } else {
            Err(Error::RegionOutOfBounds {
                start: range.start().raw(),
                len: range.len(),
                heap_len: len,
            })
        }
    }

    /// Acquires the stripe locks covering `range`, in ascending lock order
    /// (ties on lock index are impossible below `shards` distinct stripes;
    /// spans covering every lock take them all).
    fn lock_range(&self, range: AddrRange) -> StripeGuards<'_> {
        if range.is_empty() {
            return StripeGuards::None;
        }
        let first = range.start().raw() >> STRIPE_SHIFT;
        let last = (range.end().raw() - 1) >> STRIPE_SHIFT;
        if first == last {
            return StripeGuards::One(self.locks[(first & self.mask) as usize].lock());
        }
        let nlocks = self.locks.len() as u64;
        if last - first + 1 >= nlocks {
            return StripeGuards::Many(self.locks.iter().map(|l| l.lock()).collect());
        }
        // Fewer stripes than locks: consecutive stripes hash to distinct
        // locks, so sorting the indices gives a deadlock-free ascending
        // acquisition order.
        let mut idxs: Vec<usize> = (first..=last).map(|s| (s & self.mask) as usize).collect();
        idxs.sort_unstable();
        StripeGuards::Many(idxs.into_iter().map(|i| self.locks[i].lock()).collect())
    }

    /// Acquires every stripe lock, for atomic whole-memory operations
    /// (detached-execution snapshots).
    fn lock_all(&self) -> Vec<MutexGuard<'_, ()>> {
        self.locks.iter().map(|l| l.lock()).collect()
    }

    /// Writes `data` at `range`, comparing against the old contents when
    /// `detect_change` is set; same contract as [`TrackedHeap::store_bytes`].
    pub(crate) fn store_bytes(
        &self,
        range: AddrRange,
        data: &[u8],
        detect_change: bool,
    ) -> StoreEffect {
        self.check_range(range).expect("store out of bounds");
        assert_eq!(data.len() as u64, range.len(), "store size mismatch");
        let _guards = self.lock_range(range);
        let changed = self.write_words(range, data);
        if detect_change {
            StoreEffect {
                changed,
                bytes_compared: data.len() as u64,
            }
        } else {
            StoreEffect {
                changed: true,
                bytes_compared: 0,
            }
        }
    }

    /// Typed store of a [`Pod`] value at `addr`. Values contained in one
    /// word take a fast path: a single stripe lock and one word
    /// read-modify-write, no byte loop.
    pub(crate) fn store<T: Pod>(&self, addr: Addr, value: T, detect_change: bool) -> StoreEffect {
        let start = addr.raw();
        let range = AddrRange::new(addr, T::SIZE as u64);
        if T::SIZE <= 8 && (start >> 3) == ((start + T::SIZE as u64 - 1) >> 3) {
            self.check_range(range).expect("store out of bounds");
            let mut buf = [0u8; 8];
            value.write_le(&mut buf[..T::SIZE]);
            let word = self.word(start >> 3);
            let off = (start & 7) as usize;
            // Double-checked silent path: a store that leaves the word
            // unchanged has no visible effect and can linearize at this
            // lockless load, skipping the stripe lock entirely. Silent
            // stores are the common case this runtime exists to exploit.
            let cur = word.load(Ordering::Relaxed);
            let mut probe = cur.to_le_bytes();
            probe[off..off + T::SIZE].copy_from_slice(&buf[..T::SIZE]);
            if u64::from_le_bytes(probe) == cur {
                return if detect_change {
                    StoreEffect {
                        changed: false,
                        bytes_compared: T::SIZE as u64,
                    }
                } else {
                    StoreEffect {
                        changed: true,
                        bytes_compared: 0,
                    }
                };
            }
            let _g = self.locks[((start >> STRIPE_SHIFT) & self.mask) as usize].lock();
            let old = word.load(Ordering::Relaxed);
            let mut bytes = old.to_le_bytes();
            bytes[off..off + T::SIZE].copy_from_slice(&buf[..T::SIZE]);
            let new = u64::from_le_bytes(bytes);
            let changed = new != old;
            if changed {
                word.store(new, Ordering::Relaxed);
            }
            return if detect_change {
                StoreEffect {
                    changed,
                    bytes_compared: T::SIZE as u64,
                }
            } else {
                StoreEffect {
                    changed: true,
                    bytes_compared: 0,
                }
            };
        }
        let mut buf = [0u8; 16];
        let buf = &mut buf[..T::SIZE];
        value.write_le(buf);
        self.store_bytes(range, buf, detect_change)
    }

    /// Typed load of a [`Pod`] value at `addr`. Values contained in one
    /// word need no stripe lock: the word load is atomic, so concurrent
    /// read-modify-writes of neighbouring bytes can never tear it.
    pub(crate) fn load<T: Pod>(&self, addr: Addr) -> T {
        let range = AddrRange::new(addr, T::SIZE as u64);
        self.check_range(range).expect("load out of bounds");
        let mut buf = [0u8; 16];
        let buf = &mut buf[..T::SIZE];
        let first = range.start().raw() >> 3;
        let last = (range.end().raw() - 1) >> 3;
        if first == last {
            let bytes = self.word(first).load(Ordering::Relaxed).to_le_bytes();
            let off = (range.start().raw() & 7) as usize;
            buf.copy_from_slice(&bytes[off..off + T::SIZE]);
        } else {
            let _guards = self.lock_range(range);
            self.read_words(range, buf);
        }
        T::read_le(buf)
    }

    /// Bulk-loads the bytes of `range` into `out` (cleared first), atomically
    /// with respect to concurrent stores into the range. The runtime's typed
    /// bulk reads go through [`ShardedMem::load_elems`]; this byte-level
    /// variant backs the unit tests.
    #[cfg(test)]
    pub(crate) fn load_into(&self, range: AddrRange, out: &mut Vec<u8>) {
        self.check_range(range).expect("load out of bounds");
        out.clear();
        out.resize(range.len() as usize, 0);
        if range.is_empty() {
            return;
        }
        let _guards = self.lock_range(range);
        self.read_words(range, out);
    }

    /// Bulk-loads the `T`-typed elements of `range` into `out` (appended;
    /// callers clear first), atomically with respect to concurrent stores
    /// into the range. Word-aligned u64-sized elements decode straight from
    /// the word array without an intermediate byte buffer.
    pub(crate) fn load_elems<T: Pod>(&self, range: AddrRange, out: &mut Vec<T>) {
        self.check_range(range).expect("load out of bounds");
        let n = range.len() as usize / T::SIZE;
        out.reserve(n);
        let _guards = self.lock_range(range);
        if T::SIZE <= 8 && 8 % T::SIZE == 0 && range.start().raw().is_multiple_of(T::SIZE as u64) {
            // Elements never straddle a word segment (`T::SIZE` divides 8
            // and the range starts elem-aligned): decode straight out of
            // each word's bytes, no intermediate buffer.
            let mut pos = range.start().raw();
            let end = range.end().raw();
            while pos < end {
                let (chunk, mut idx) = self.chunk_of(pos >> 3);
                while pos < end && idx < chunk.len() {
                    if T::SIZE == 8 && pos & 7 == 0 && end - pos >= 8 {
                        // Whole aligned words in one `extend` (exact-size
                        // iterator, no per-element capacity checks).
                        let span = (((end - pos) >> 3) as usize).min(chunk.len() - idx);
                        out.extend(
                            chunk[idx..idx + span]
                                .iter()
                                .map(|w| T::read_le(&w.load(Ordering::Relaxed).to_le_bytes())),
                        );
                        pos += (span * 8) as u64;
                        idx += span;
                        continue;
                    }
                    let off = (pos & 7) as usize;
                    let nb = ((8 - off) as u64).min(end - pos) as usize;
                    let bytes = chunk[idx].load(Ordering::Relaxed).to_le_bytes();
                    out.extend(bytes[off..off + nb].chunks_exact(T::SIZE).map(T::read_le));
                    pos += nb as u64;
                    idx += 1;
                }
            }
        } else {
            let mut bytes = vec![0u8; range.len() as usize];
            self.read_words(range, &mut bytes);
            for chunk in bytes.chunks_exact(T::SIZE) {
                out.push(T::read_le(chunk));
            }
        }
    }

    /// Bulk store with per-element change detection: writes `data`
    /// (`elem_size`-byte elements) at `range` under one stripe-lock
    /// acquisition, records runs of *changed* element indices into `runs`
    /// (cleared first), and returns the number of changed elements. With
    /// `detect_change` off every element counts as changed, matching
    /// [`TrackedHeap::store_bytes`] semantics.
    pub(crate) fn store_elems(
        &self,
        range: AddrRange,
        data: &[u8],
        elem_size: usize,
        detect_change: bool,
        runs: &mut Vec<(usize, usize)>,
    ) -> usize {
        runs.clear();
        self.check_range(range).expect("store out of bounds");
        assert_eq!(data.len() as u64, range.len(), "store size mismatch");
        if data.is_empty() {
            return 0;
        }
        let n = data.len() / elem_size;
        let _guards = self.lock_range(range);
        struct RunState {
            changed_elems: usize,
            run_start: Option<usize>,
        }
        impl RunState {
            #[inline]
            fn mark(&mut self, k: usize, changed: bool, runs: &mut Vec<(usize, usize)>) {
                if changed {
                    self.changed_elems += 1;
                    if self.run_start.is_none() {
                        self.run_start = Some(k);
                    }
                } else if let Some(start) = self.run_start.take() {
                    runs.push((start, k));
                }
            }
        }
        let mut st = RunState {
            changed_elems: 0,
            run_start: None,
        };
        if elem_size <= 8
            && 8 % elem_size == 0
            && range.start().raw().is_multiple_of(elem_size as u64)
        {
            // Element boundaries coincide with word-segment boundaries
            // (`elem_size` divides 8 and the range starts elem-aligned), so
            // each word is one load/compare/store covering whole elements:
            // the per-element change bits fall out of comparing the old and
            // new word bytes. Chunk lookup is hoisted out of the word loop.
            let mut pos = range.start().raw();
            let end = range.end().raw();
            let mut o = 0usize;
            while pos < end {
                let (chunk, mut idx) = self.chunk_of(pos >> 3);
                while pos < end && idx < chunk.len() {
                    if pos & 7 == 0 && end - pos >= 8 {
                        // Whole aligned words: fixed-size decode, one
                        // compare per word, per-element work only on the
                        // words that actually changed.
                        let span = (((end - pos) >> 3) as usize).min(chunk.len() - idx);
                        let per = 8 / elem_size;
                        let base = o / elem_size;
                        let words = &chunk[idx..idx + span];
                        let src = &data[o..o + span * 8];
                        let le64 = |s: &[u8], k: usize| {
                            u64::from_le_bytes(s[k..k + 8].try_into().expect("8 bytes"))
                        };
                        if !detect_change {
                            for (word, ed) in words.iter().zip(src.chunks_exact(8)) {
                                let new = le64(ed, 0);
                                if new != word.load(Ordering::Relaxed) {
                                    word.store(new, Ordering::Relaxed);
                                }
                            }
                            st.changed_elems += span * per;
                            if st.run_start.is_none() {
                                st.run_start = Some(base);
                            }
                        } else {
                            let mut i = 0usize;
                            if self.simd {
                                // Vectorized line loop: eight words (one
                                // 64-byte line) per step, branch-free over
                                // the lane bodies — the xor lanes OR-reduce
                                // to one per-line change word, so a silent
                                // line costs eight loads and one compare,
                                // with no per-word branching for the
                                // autovectorizer to trip on. Per-element
                                // work happens only on changed lines.
                                let ebits = elem_size * 8;
                                let emask = if elem_size == 8 {
                                    u64::MAX
                                } else {
                                    (1u64 << ebits) - 1
                                };
                                while i + 8 <= span {
                                    // Fixed-size views: the `[u8; 64]` line
                                    // and `&words[i..i + 8]` window make
                                    // every lane index in-bounds by
                                    // construction, so the reduce below is
                                    // eight load/xor pairs and one test.
                                    let s: &[u8; 64] =
                                        src[i * 8..i * 8 + 64].try_into().expect("64-byte line");
                                    let w = &words[i..i + 8];
                                    let mut diff = 0u64;
                                    for (l, word) in w.iter().enumerate() {
                                        diff |= le64(s, l * 8) ^ word.load(Ordering::Relaxed);
                                    }
                                    if diff == 0 {
                                        // Silent line: every element it
                                        // covers is unchanged.
                                        if let Some(start) = st.run_start.take() {
                                            runs.push((start, base + i * per));
                                        }
                                        i += 8;
                                        continue;
                                    }
                                    // Changed line (the rare case): redo the
                                    // per-lane xor to place the change bits.
                                    for (l, word) in w.iter().enumerate() {
                                        let new = le64(s, l * 8);
                                        let xor = new ^ word.load(Ordering::Relaxed);
                                        if xor != 0 {
                                            word.store(new, Ordering::Relaxed);
                                        }
                                        for e in 0..per {
                                            let changed = (xor >> (e * ebits)) & emask != 0;
                                            st.mark(base + (i + l) * per + e, changed, runs);
                                        }
                                    }
                                    i += 8;
                                }
                            }
                            while i < span {
                                // Word-at-a-time walk: the scalar ablation
                                // baseline (`simd_store` off) and the
                                // sub-line tail of the vectorized path.
                                // One silent word, or a run of changing
                                // words consumed without re-probing.
                                loop {
                                    let word = &words[i];
                                    let ed = &src[i * 8..(i + 1) * 8];
                                    let new = le64(ed, 0);
                                    let old = word.load(Ordering::Relaxed);
                                    if new == old {
                                        // Silent word: every element it
                                        // covers is unchanged.
                                        if let Some(start) = st.run_start.take() {
                                            runs.push((start, base + i * per));
                                        }
                                        i += 1;
                                        break;
                                    }
                                    word.store(new, Ordering::Relaxed);
                                    // Element change bits via xor/shift:
                                    // `elem_size` is a runtime value, so a
                                    // byte-slice compare would be a memcmp
                                    // call per word.
                                    let xor = new ^ old;
                                    let ebits = elem_size * 8;
                                    let emask = if elem_size == 8 {
                                        u64::MAX
                                    } else {
                                        (1u64 << ebits) - 1
                                    };
                                    for e in 0..per {
                                        let changed = (xor >> (e * ebits)) & emask != 0;
                                        st.mark(base + i * per + e, changed, runs);
                                    }
                                    i += 1;
                                    if i >= span {
                                        break;
                                    }
                                }
                            }
                        }
                        pos += (span * 8) as u64;
                        o += span * 8;
                        idx += span;
                        continue;
                    }
                    // Partial head or tail word: splice into the existing
                    // word bytes.
                    let word = &chunk[idx];
                    let off = (pos & 7) as usize;
                    let nb = ((8 - off) as u64).min(end - pos) as usize;
                    let old = word.load(Ordering::Relaxed);
                    let oldb = old.to_le_bytes();
                    let mut bytes = oldb;
                    bytes[off..off + nb].copy_from_slice(&data[o..o + nb]);
                    let new = u64::from_le_bytes(bytes);
                    if new != old {
                        word.store(new, Ordering::Relaxed);
                    }
                    let cnt = nb / elem_size;
                    let base = o / elem_size;
                    if new == old && detect_change {
                        if let Some(start) = st.run_start.take() {
                            runs.push((start, base));
                        }
                    } else if !detect_change {
                        st.changed_elems += cnt;
                        if st.run_start.is_none() {
                            st.run_start = Some(base);
                        }
                    } else {
                        let xor = new ^ old;
                        let ebits = elem_size * 8;
                        let emask = if elem_size == 8 {
                            u64::MAX
                        } else {
                            (1u64 << ebits) - 1
                        };
                        for e in 0..cnt {
                            let s = off + e * elem_size;
                            let changed = (xor >> (s * 8)) & emask != 0;
                            st.mark(base + e, changed, runs);
                        }
                    }
                    pos += nb as u64;
                    o += nb;
                    idx += 1;
                }
            }
        } else {
            // Odd element sizes (3/12/16 bytes, ...) or an elem-unaligned
            // start: elements straddle word boundaries, so walk the words
            // once — one load/compare/store per word, like the fast path —
            // instead of a `write_words` call per element. A rolling
            // element cursor turns each word's xor into per-element change
            // bits even when one element spans several words. Trailing
            // bytes beyond the last whole element are left unwritten, as
            // before.
            let start = range.start().raw();
            let end = start + (n * elem_size) as u64;
            let mut pos = start;
            let mut o = 0usize;
            let mut k = 0usize;
            let mut elem_left = elem_size;
            let mut elem_changed = false;
            while pos < end {
                let (chunk, mut idx) = self.chunk_of(pos >> 3);
                while pos < end && idx < chunk.len() {
                    let word = &chunk[idx];
                    let off = (pos & 7) as usize;
                    let nb = ((8 - off) as u64).min(end - pos) as usize;
                    let old = word.load(Ordering::Relaxed);
                    let new = if nb == 8 {
                        u64::from_le_bytes(data[o..o + 8].try_into().expect("8 bytes"))
                    } else {
                        let mut bytes = old.to_le_bytes();
                        bytes[off..off + nb].copy_from_slice(&data[o..o + nb]);
                        u64::from_le_bytes(bytes)
                    };
                    let xor = new ^ old;
                    if xor != 0 {
                        word.store(new, Ordering::Relaxed);
                    }
                    let mut b = 0usize;
                    while b < nb {
                        let take = elem_left.min(nb - b);
                        if xor != 0 {
                            let mask = if take >= 8 {
                                u64::MAX
                            } else {
                                ((1u64 << (take * 8)) - 1) << ((off + b) * 8)
                            };
                            if xor & mask != 0 {
                                elem_changed = true;
                            }
                        }
                        b += take;
                        elem_left -= take;
                        if elem_left == 0 {
                            st.mark(k, elem_changed || !detect_change, runs);
                            k += 1;
                            elem_left = elem_size;
                            elem_changed = false;
                        }
                    }
                    pos += nb as u64;
                    o += nb;
                    idx += 1;
                }
            }
        }
        if let Some(start) = st.run_start {
            runs.push((start, n));
        }
        st.changed_elems
    }

    /// Copies the whole arena into a [`TrackedHeap`], taking every stripe
    /// lock so the copy is atomic with respect to concurrent stores. This is
    /// the snapshot a detached tthread execution runs against.
    pub(crate) fn snapshot(&self) -> TrackedHeap {
        let _all = self.lock_all();
        let len = self.len.load(Ordering::Relaxed) as usize;
        let mut bytes = vec![0u8; len];
        for (i, chunk) in bytes.chunks_mut(8).enumerate() {
            let w = self.word(i as u64).load(Ordering::Relaxed).to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
        TrackedHeap::from_bytes(bytes, self.capacity)
    }

    /// The chunk containing word `w` and the index of `w` within it.
    #[inline]
    fn chunk_of(&self, w: u64) -> (&[AtomicU64], usize) {
        let chunk = self.chunks[(w >> CHUNK_WORDS_SHIFT) as usize]
            .get()
            .expect("access to unallocated arena chunk");
        (chunk, (w & (CHUNK_WORDS - 1)) as usize)
    }

    /// Reads `range` into `out`. Caller holds the stripe locks covering
    /// `range` (or has proven the range fits one word). The chunk lookup is
    /// hoisted out of the word loop and whole aligned words copy without
    /// byte splicing, so bulk reads run at memcpy-like speed.
    fn read_words(&self, range: AddrRange, out: &mut [u8]) {
        debug_assert_eq!(out.len() as u64, range.len());
        let mut pos = range.start().raw();
        let end = range.end().raw();
        let mut o = 0usize;
        while pos < end {
            let (chunk, mut idx) = self.chunk_of(pos >> 3);
            while pos < end && idx < chunk.len() {
                if pos & 7 == 0 && end - pos >= 8 {
                    out[o..o + 8]
                        .copy_from_slice(&chunk[idx].load(Ordering::Relaxed).to_le_bytes());
                    pos += 8;
                    o += 8;
                } else {
                    let off = (pos & 7) as usize;
                    let n = ((8 - off) as u64).min(end - pos) as usize;
                    let bytes = chunk[idx].load(Ordering::Relaxed).to_le_bytes();
                    out[o..o + n].copy_from_slice(&bytes[off..off + n]);
                    pos += n as u64;
                    o += n;
                }
                idx += 1;
            }
        }
    }

    /// Writes `data` at `range` word by word, returning whether any byte
    /// actually changed. Unchanged words are not stored, so the compare
    /// doubles as silent-store detection. Caller holds the stripe locks
    /// covering `range`.
    fn write_words(&self, range: AddrRange, data: &[u8]) -> bool {
        let mut changed = false;
        let mut pos = range.start().raw();
        let end = range.end().raw();
        let mut o = 0usize;
        while pos < end {
            let (chunk, mut idx) = self.chunk_of(pos >> 3);
            while pos < end && idx < chunk.len() {
                let word = &chunk[idx];
                if pos & 7 == 0 && end - pos >= 8 {
                    let new = u64::from_le_bytes(data[o..o + 8].try_into().expect("8 bytes"));
                    if new != word.load(Ordering::Relaxed) {
                        changed = true;
                        word.store(new, Ordering::Relaxed);
                    }
                    pos += 8;
                    o += 8;
                } else {
                    let off = (pos & 7) as usize;
                    let n = ((8 - off) as u64).min(end - pos) as usize;
                    let old = word.load(Ordering::Relaxed);
                    let mut bytes = old.to_le_bytes();
                    bytes[off..off + n].copy_from_slice(&data[o..o + n]);
                    let new = u64::from_le_bytes(bytes);
                    if new != old {
                        changed = true;
                        word.store(new, Ordering::Relaxed);
                    }
                    pos += n as u64;
                    o += n;
                }
                idx += 1;
            }
        }
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem(shards: usize) -> ShardedMem {
        ShardedMem::new(4096, shards, true)
    }

    #[test]
    fn shard_count_is_normalized() {
        assert_eq!(ShardedMem::new(64, 0, true).shards(), 1);
        assert_eq!(ShardedMem::new(64, 1, true).shards(), 1);
        assert_eq!(ShardedMem::new(64, 3, true).shards(), 4);
        assert_eq!(ShardedMem::new(64, 8, true).shards(), 8);
    }

    #[test]
    fn alloc_matches_heap_semantics() {
        for shards in [1, 4] {
            let m = mem(shards);
            let a = m.alloc(3, 1).unwrap();
            let b = m.alloc(8, 8).unwrap();
            assert_eq!(a.raw(), 0);
            assert_eq!(b.raw() % 8, 0);
            assert!(b.raw() >= 3);
            // Mirror of TrackedHeap::alloc's padding-aware error report.
            let m2 = ShardedMem::new(16, shards, true);
            m2.alloc(3, 1).unwrap();
            match m2.alloc(16, 8).unwrap_err() {
                Error::ArenaExhausted {
                    requested,
                    available,
                } => {
                    assert_eq!(requested, 16);
                    assert_eq!(available, 8);
                }
                other => panic!("unexpected error {other:?}"),
            }
            assert!(m2.alloc(8, 8).is_ok());
            match m2.alloc(u64::MAX, 1).unwrap_err() {
                Error::ArenaExhausted { available, .. } => assert_eq!(available, 0),
                other => panic!("unexpected error {other:?}"),
            }
        }
    }

    #[test]
    fn store_detects_change_and_silence() {
        for shards in [1, 2, 16] {
            let m = mem(shards);
            let a = m.alloc(4, 4).unwrap();
            let e1 = m.store(a, 7u32, true);
            assert!(e1.changed);
            assert_eq!(e1.bytes_compared, 4);
            assert!(!m.store(a, 7u32, true).changed);
            assert!(m.store(a, 8u32, true).changed);
            assert_eq!(m.load::<u32>(a), 8);
            let e = m.store(a, 8u32, false);
            assert!(e.changed);
            assert_eq!(e.bytes_compared, 0);
        }
    }

    #[test]
    fn unaligned_byte_ranges_round_trip() {
        let m = mem(4);
        let a = m.alloc(256, 1).unwrap();
        // A range that straddles word and stripe boundaries.
        let r = AddrRange::new(a.offset(61), 10);
        let data: Vec<u8> = (1..=10).collect();
        assert!(m.store_bytes(r, &data, true).changed);
        let mut out = Vec::new();
        m.load_into(r, &mut out);
        assert_eq!(out, data);
        // Neighbouring bytes are untouched.
        let mut whole = Vec::new();
        m.load_into(AddrRange::new(a, 256), &mut whole);
        assert_eq!(whole[60], 0);
        assert_eq!(whole[71], 0);
        assert_eq!(&whole[61..71], &data[..]);
    }

    #[test]
    fn sixteen_byte_values_cross_stripes() {
        let m = mem(4);
        let a = m.alloc(128, 1).unwrap();
        // Place a u128 at offset 56: bytes 56..72 straddle the stripe at 64.
        let addr = a.offset(56);
        let v = 0x0123_4567_89ab_cdef_fedc_ba98_7654_3210u128;
        assert!(m.store(addr, v, true).changed);
        assert_eq!(m.load::<u128>(addr), v);
        assert!(!m.store(addr, v, true).changed);
    }

    #[test]
    fn empty_range_store_matches_heap() {
        let m = mem(2);
        let a = m.alloc(8, 8).unwrap();
        let r = AddrRange::new(a, 0);
        assert!(!m.store_bytes(r, &[], true).changed);
        assert!(m.store_bytes(r, &[], false).changed);
    }

    #[test]
    fn store_elems_reports_changed_runs() {
        let m = mem(4);
        let a = m.alloc(8 * 4, 8).unwrap();
        let range = AddrRange::new(a, 32);
        let enc = |vals: &[u64]| -> Vec<u8> { vals.iter().flat_map(|v| v.to_le_bytes()).collect() };
        let mut runs = Vec::new();
        let changed = m.store_elems(range, &enc(&[1, 2, 3, 4]), 8, true, &mut runs);
        assert_eq!(changed, 4);
        assert_eq!(runs, vec![(0, 4)]);
        // Change only elements 0 and 2..4.
        let changed = m.store_elems(range, &enc(&[9, 2, 8, 7]), 8, true, &mut runs);
        assert_eq!(changed, 3);
        assert_eq!(runs, vec![(0, 1), (2, 4)]);
        // All silent.
        let changed = m.store_elems(range, &enc(&[9, 2, 8, 7]), 8, true, &mut runs);
        assert_eq!(changed, 0);
        assert!(runs.is_empty());
        // Detection off: everything counts as changed.
        let changed = m.store_elems(range, &enc(&[9, 2, 8, 7]), 8, false, &mut runs);
        assert_eq!(changed, 4);
        assert_eq!(runs, vec![(0, 4)]);
    }

    #[test]
    fn snapshot_copies_exact_bytes() {
        let m = mem(4);
        let a = m.alloc(100, 1).unwrap();
        let data: Vec<u8> = (0..100).map(|i| (i * 7) as u8).collect();
        m.store_bytes(AddrRange::new(a, 100), &data, false);
        let heap = m.snapshot();
        assert_eq!(heap.len(), 100);
        assert_eq!(heap.capacity(), 4096);
        assert_eq!(heap.load_bytes(AddrRange::new(a, 100)), &data[..]);
    }

    #[test]
    #[should_panic(expected = "store out of bounds")]
    fn out_of_bounds_store_panics() {
        let m = mem(1);
        m.store(Addr::new(0), 1u32, true);
    }

    #[test]
    fn concurrent_disjoint_stores_are_exact() {
        use std::sync::Arc;
        let m = Arc::new(ShardedMem::new(1 << 20, 8, true));
        let a = m.alloc(8 * 1024, 8).unwrap();
        let threads = 4;
        let per = 1024 / threads;
        std::thread::scope(|s| {
            for t in 0..threads {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    for i in t * per..(t + 1) * per {
                        let addr = a.offset((i * 8) as u64);
                        for round in 0..16u64 {
                            m.store(addr, (i as u64) << 8 | round, true);
                        }
                    }
                });
            }
        });
        for i in 0..1024 {
            assert_eq!(
                m.load::<u64>(a.offset((i * 8) as u64)),
                (i as u64) << 8 | 15
            );
        }
    }

    #[test]
    fn concurrent_same_stripe_byte_stores_do_not_lose_updates() {
        use std::sync::Arc;
        // Every thread writes its own byte inside ONE word; the stripe lock
        // must make the read-modify-writes exclusive.
        let m = Arc::new(ShardedMem::new(64, 4, true));
        let a = m.alloc(8, 8).unwrap();
        std::thread::scope(|s| {
            for t in 0..8usize {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    let r = AddrRange::new(a.offset(t as u64), 1);
                    m.store_bytes(r, &[(t + 1) as u8], true);
                });
            }
        });
        for t in 0..8usize {
            let mut out = Vec::new();
            m.load_into(AddrRange::new(a.offset(t as u64), 1), &mut out);
            assert_eq!(out, vec![(t + 1) as u8]);
        }
    }

    /// Runs one `store_elems` against a prepared arena and returns
    /// `(changed_elems, runs, final bytes)`.
    fn run_store_elems(
        simd: bool,
        initial: &[u8],
        start: u64,
        data: &[u8],
        elem_size: usize,
        detect: bool,
    ) -> (usize, Vec<(usize, usize)>, Vec<u8>) {
        let m = ShardedMem::new(1 << 16, 4, simd);
        let base = m.alloc(initial.len() as u64, 1).unwrap();
        m.store_bytes(AddrRange::new(base, initial.len() as u64), initial, false);
        let range = AddrRange::new(base.offset(start), data.len() as u64);
        let mut runs = Vec::new();
        let changed = m.store_elems(range, data, elem_size, detect, &mut runs);
        let mut out = Vec::new();
        m.load_into(AddrRange::new(base, initial.len() as u64), &mut out);
        (changed, runs, out)
    }

    #[test]
    fn odd_elem_sizes_and_unaligned_starts_report_exact_runs() {
        // The seed's fallback issued one `write_words` call per element;
        // the batched word walk must report the same per-element runs.
        // 3-byte elements starting at an odd offset: element 2 straddles a
        // word boundary.
        let initial = vec![0u8; 256];
        let mut data = vec![0u8; 7 * 3];
        data[3 * 2 + 1] = 0xaa; // element 2
        data[3 * 5] = 0xbb; // element 5
        for simd in [false, true] {
            let (changed, runs, out) = run_store_elems(simd, &initial, 1, &data, 3, true);
            assert_eq!(changed, 2);
            assert_eq!(runs, vec![(2, 3), (5, 6)]);
            assert_eq!(&out[1..1 + data.len()], &data[..]);
            // A second identical store is fully silent.
            let m = ShardedMem::new(1 << 16, 4, simd);
            let b = m.alloc(256, 1).unwrap();
            let r = AddrRange::new(b.offset(1), data.len() as u64);
            let mut runs = Vec::new();
            m.store_elems(r, &data, 3, true, &mut runs);
            assert_eq!(m.store_elems(r, &data, 3, true, &mut runs), 0);
            assert!(runs.is_empty());
        }
        // 12- and 16-byte elements (multi-word elements).
        for (esize, nelem) in [(12usize, 5usize), (16, 4)] {
            let mut data = vec![0u8; esize * nelem];
            data[esize + 7] = 1; // element 1, second word
            data[esize * (nelem - 1)] = 2; // last element
            let (changed, runs, out) = run_store_elems(false, &[0u8; 256], 4, &data, esize, true);
            assert_eq!(changed, 2, "esize {esize}");
            assert_eq!(runs, vec![(1, 2), (nelem - 1, nelem)]);
            assert_eq!(&out[4..4 + data.len()], &data[..]);
        }
        // detect=false marks everything changed but still writes exactly.
        let (changed, runs, _) = run_store_elems(true, &[1u8; 64], 1, &[1u8; 9], 3, false);
        assert_eq!(changed, 3);
        assert_eq!(runs, vec![(0, 3)]);
    }

    #[test]
    fn fallback_ignores_partial_tail_element() {
        // 11 bytes of 3-byte elements: the trailing 2 bytes belong to no
        // whole element and must not be written (seed behaviour).
        let (changed, runs, out) = run_store_elems(true, &[0u8; 64], 0, &[9u8; 11], 3, true);
        assert_eq!(changed, 3);
        assert_eq!(runs, vec![(0, 3)]);
        assert_eq!(&out[..9], &[9u8; 9]);
        assert_eq!(&out[9..11], &[0, 0], "partial tail element was written");
    }

    mod simd_scalar_equivalence {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// The vectorized line loop and the scalar word loop are
            /// observationally identical: same changed-element count, same
            /// `runs` vector, same final memory, across elem sizes (word
            /// fast path and odd-size fallback), alignments, and silent
            /// fractions.
            #[test]
            fn simd_and_scalar_agree(
                elem_size in (0usize..8).prop_map(|i| [1usize, 2, 3, 4, 5, 8, 12, 16][i]),
                nelem in 1usize..400,
                start in 0u64..24,
                detect in any::<bool>(),
                seed in any::<u64>(),
                silent_num in 0u64..=16,
            ) {
                let len = elem_size * nelem;
                let arena = (start as usize + len + 16).max(64);
                // Deterministic xorshift data; `silent_num/16` of the
                // elements rewrite the initial contents unchanged.
                let mut x = seed | 1;
                let mut step = move || {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    x
                };
                let initial: Vec<u8> = (0..arena).map(|_| step() as u8).collect();
                let mut data = vec![0u8; len];
                for k in 0..nelem {
                    let silent = step() % 16 < silent_num;
                    for b in 0..elem_size {
                        let i = k * elem_size + b;
                        data[i] = if silent {
                            initial[start as usize + i]
                        } else {
                            step() as u8
                        };
                    }
                }
                let scalar = run_store_elems(false, &initial, start, &data, elem_size, detect);
                let simd = run_store_elems(true, &initial, start, &data, elem_size, detect);
                prop_assert_eq!(scalar.0, simd.0, "changed-element counts diverge");
                prop_assert_eq!(&scalar.1, &simd.1, "run vectors diverge");
                prop_assert_eq!(&scalar.2, &simd.2, "final bytes diverge");
                // And both leave memory holding exactly the stored data.
                let s = start as usize;
                prop_assert_eq!(&scalar.2[s..s + len], &data[..]);
            }
        }
    }
}
