//! The tracked memory arena.
//!
//! [`TrackedHeap`] is a growable byte arena that plays the role of program
//! memory in the DTT model. Stores into it report whether they *changed* the
//! contents — the primitive on which silent-store suppression and triggering
//! are built. The heap knows nothing about tthreads; the runtime layers
//! trigger dispatch on top.

use crate::addr::{Addr, AddrRange};
use crate::error::{Error, Result};
use crate::pod::Pod;

/// Result of a raw store: did the bytes change, and how many were compared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreEffect {
    /// Whether any byte differed from the previous contents.
    pub changed: bool,
    /// Bytes compared by change detection (0 when detection is skipped).
    pub bytes_compared: u64,
}

/// A byte-addressable arena with change-detecting stores.
///
/// # Examples
///
/// ```
/// use dtt_core::addr::AddrRange;
/// use dtt_core::heap::TrackedHeap;
/// # fn main() -> Result<(), dtt_core::error::Error> {
/// let mut heap = TrackedHeap::with_capacity(1 << 20);
/// let a = heap.alloc(8, 8)?;
/// let r = AddrRange::new(a, 8);
/// let first = heap.store_bytes(r, &[1, 2, 3, 4, 5, 6, 7, 8], true);
/// assert!(first.changed);
/// let silent = heap.store_bytes(r, &[1, 2, 3, 4, 5, 6, 7, 8], true);
/// assert!(!silent.changed);
/// # Ok(())
/// # }
/// ```
///
/// Raw byte access normally goes through the typed handle layer
/// ([`crate::handle::Tracked`]/[`crate::handle::TrackedArray`]).
#[derive(Debug, Clone, Default)]
pub struct TrackedHeap {
    mem: Vec<u8>,
    capacity: u64,
}

impl TrackedHeap {
    /// Creates a heap bounded at `capacity` bytes.
    pub fn with_capacity(capacity: u64) -> Self {
        TrackedHeap {
            mem: Vec::new(),
            capacity,
        }
    }

    /// Creates a heap directly from its byte contents (used by
    /// [`crate::mem::ShardedMem::snapshot`] to materialize a point-in-time
    /// copy of the sharded arena).
    pub(crate) fn from_bytes(mem: Vec<u8>, capacity: u64) -> Self {
        TrackedHeap { mem, capacity }
    }

    /// Bytes currently allocated.
    pub fn len(&self) -> u64 {
        self.mem.len() as u64
    }

    /// Whether nothing has been allocated yet.
    pub fn is_empty(&self) -> bool {
        self.mem.is_empty()
    }

    /// The configured capacity bound in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Allocates `len` bytes aligned to `align` and returns their address.
    /// The new bytes are zeroed.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ArenaExhausted`] if the allocation would exceed the
    /// capacity bound.
    ///
    /// # Panics
    ///
    /// Panics if `align` is zero or not a power of two.
    pub fn alloc(&mut self, len: u64, align: u64) -> Result<Addr> {
        assert!(
            align > 0 && align.is_power_of_two(),
            "alignment must be a nonzero power of two"
        );
        let base = (self.mem.len() as u64).div_ceil(align) * align;
        // `available` accounts for the alignment padding the allocation
        // would need: capacity minus the aligned base, saturated so a base
        // already past capacity reports 0 rather than wrapping.
        let available = self.capacity.saturating_sub(base);
        let end = base.checked_add(len).ok_or(Error::ArenaExhausted {
            requested: len,
            available,
        })?;
        if end > self.capacity {
            return Err(Error::ArenaExhausted {
                requested: len,
                available,
            });
        }
        self.mem.resize(end as usize, 0);
        Ok(Addr::new(base))
    }

    /// Checks that `range` lies inside the allocated arena.
    ///
    /// # Errors
    ///
    /// Returns [`Error::RegionOutOfBounds`] otherwise.
    pub fn check_range(&self, range: AddrRange) -> Result<()> {
        if range.end().raw() <= self.len() {
            Ok(())
        } else {
            Err(Error::RegionOutOfBounds {
                start: range.start().raw(),
                len: range.len(),
                heap_len: self.len(),
            })
        }
    }

    /// Reads the bytes of `range`.
    ///
    /// # Panics
    ///
    /// Panics if `range` is out of bounds; handles constructed by this heap
    /// are always in bounds.
    pub fn load_bytes(&self, range: AddrRange) -> &[u8] {
        self.check_range(range).expect("load out of bounds");
        &self.mem[range.start().raw() as usize..range.end().raw() as usize]
    }

    /// Writes `data` at `range`, optionally comparing with the old contents.
    ///
    /// With `detect_change` set, the returned [`StoreEffect::changed`] is
    /// exact; without it, every store is reported as changing (the behaviour
    /// of a machine without value-comparing stores) and no bytes are
    /// compared.
    ///
    /// # Panics
    ///
    /// Panics if `range` is out of bounds or `data.len() != range.len()`.
    pub fn store_bytes(
        &mut self,
        range: AddrRange,
        data: &[u8],
        detect_change: bool,
    ) -> StoreEffect {
        self.check_range(range).expect("store out of bounds");
        assert_eq!(data.len() as u64, range.len(), "store size mismatch");
        let slot = &mut self.mem[range.start().raw() as usize..range.end().raw() as usize];
        if detect_change {
            let changed = slot != data;
            if changed {
                slot.copy_from_slice(data);
            }
            StoreEffect {
                changed,
                bytes_compared: data.len() as u64,
            }
        } else {
            slot.copy_from_slice(data);
            StoreEffect {
                changed: true,
                bytes_compared: 0,
            }
        }
    }

    /// Mutable access to the raw bytes of `range`, for the bulk store path.
    ///
    /// # Panics
    ///
    /// Panics if `range` is out of bounds.
    pub(crate) fn slice_mut(&mut self, range: AddrRange) -> &mut [u8] {
        self.check_range(range).expect("store out of bounds");
        &mut self.mem[range.start().raw() as usize..range.end().raw() as usize]
    }

    /// Typed load of a [`Pod`] value at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the value extends past the arena.
    pub fn load<T: Pod>(&self, addr: Addr) -> T {
        T::read_le(self.load_bytes(AddrRange::new(addr, T::SIZE as u64)))
    }

    /// Typed store of a [`Pod`] value at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the value extends past the arena.
    pub fn store<T: Pod>(&mut self, addr: Addr, value: T, detect_change: bool) -> StoreEffect {
        let mut buf = [0u8; 16];
        let buf = &mut buf[..T::SIZE];
        value.write_le(buf);
        self.store_bytes(AddrRange::new(addr, T::SIZE as u64), buf, detect_change)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heap() -> TrackedHeap {
        TrackedHeap::with_capacity(4096)
    }

    #[test]
    fn alloc_respects_alignment() {
        let mut h = heap();
        let a = h.alloc(3, 1).unwrap();
        let b = h.alloc(8, 8).unwrap();
        assert_eq!(a.raw(), 0);
        assert_eq!(b.raw() % 8, 0);
        assert!(b.raw() >= 3);
    }

    #[test]
    fn alloc_zeroes_memory() {
        let mut h = heap();
        let a = h.alloc(16, 8).unwrap();
        assert_eq!(h.load_bytes(AddrRange::new(a, 16)), &[0u8; 16]);
    }

    #[test]
    fn alloc_beyond_capacity_errors() {
        let mut h = TrackedHeap::with_capacity(16);
        assert!(h.alloc(8, 8).is_ok());
        let err = h.alloc(16, 8).unwrap_err();
        assert!(matches!(err, Error::ArenaExhausted { .. }));
    }

    #[test]
    fn alloc_error_reports_padding_aware_available() {
        let mut h = TrackedHeap::with_capacity(16);
        h.alloc(3, 1).unwrap(); // len = 3; an 8-aligned base sits at 8
        match h.alloc(16, 8).unwrap_err() {
            Error::ArenaExhausted {
                requested,
                available,
            } => {
                assert_eq!(requested, 16);
                // Not 13 (capacity - len): padding to the aligned base
                // leaves only 8 usable bytes.
                assert_eq!(available, 8);
            }
            other => panic!("unexpected error {other:?}"),
        }
        // Exactly at the boundary the allocation succeeds...
        assert!(h.alloc(8, 8).is_ok());
        assert_eq!(h.len(), 16);
        // ...and past it both error paths report 0 available, saturated.
        match h.alloc(1, 1).unwrap_err() {
            Error::ArenaExhausted { available, .. } => assert_eq!(available, 0),
            other => panic!("unexpected error {other:?}"),
        }
        match h.alloc(u64::MAX, 1).unwrap_err() {
            Error::ArenaExhausted { available, .. } => assert_eq!(available, 0),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn store_detects_change_and_silence() {
        let mut h = heap();
        let a = h.alloc(4, 4).unwrap();
        let e1 = h.store(a, 7u32, true);
        assert!(e1.changed);
        assert_eq!(e1.bytes_compared, 4);
        let e2 = h.store(a, 7u32, true);
        assert!(!e2.changed);
        let e3 = h.store(a, 8u32, true);
        assert!(e3.changed);
        assert_eq!(h.load::<u32>(a), 8);
    }

    #[test]
    fn store_without_detection_always_changes() {
        let mut h = heap();
        let a = h.alloc(4, 4).unwrap();
        h.store(a, 7u32, false);
        let e = h.store(a, 7u32, false);
        assert!(e.changed);
        assert_eq!(e.bytes_compared, 0);
    }

    #[test]
    fn partial_byte_change_is_detected() {
        let mut h = heap();
        let a = h.alloc(8, 8).unwrap();
        h.store_bytes(AddrRange::new(a, 8), &[0, 0, 0, 0, 0, 0, 0, 1], true);
        let e = h.store_bytes(AddrRange::new(a, 8), &[0, 0, 0, 0, 0, 0, 0, 2], true);
        assert!(e.changed);
    }

    #[test]
    fn check_range_boundaries() {
        let mut h = heap();
        let a = h.alloc(8, 1).unwrap();
        assert!(h.check_range(AddrRange::new(a, 8)).is_ok());
        assert!(h.check_range(AddrRange::new(a, 9)).is_err());
        assert!(h.check_range(AddrRange::new(Addr::new(8), 0)).is_ok());
    }

    #[test]
    #[should_panic(expected = "load out of bounds")]
    fn out_of_bounds_load_panics() {
        let h = heap();
        h.load::<u32>(Addr::new(0));
    }

    #[test]
    #[should_panic(expected = "store size mismatch")]
    fn store_size_mismatch_panics() {
        let mut h = heap();
        let a = h.alloc(8, 1).unwrap();
        h.store_bytes(AddrRange::new(a, 8), &[0u8; 4], true);
    }

    #[test]
    fn typed_floats_round_trip() {
        let mut h = heap();
        let a = h.alloc(8, 8).unwrap();
        h.store(a, 2.5f64, true);
        assert_eq!(h.load::<f64>(a), 2.5);
    }
}
