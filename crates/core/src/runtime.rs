//! The data-triggered-threads runtime.
//!
//! [`Runtime`] owns the tracked arena, the trigger table, the thread status
//! table, the pending queue and (optionally) a pool of worker threads. See
//! the crate-level documentation for the programming model and a complete
//! example.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex, MutexGuard, RwLock};

use crate::accessor::Accessor;
use crate::addr::AddrRange;
use crate::config::Config;
use crate::ctx::{Ctx, LoggedStore};
use crate::deadline::{backoff_delay, BodyDeadline};
use crate::dispatch::{Dispatch, ParkOutcome, PendingPush, RaiseStep};
use crate::error::{Error, Result};
use crate::fault::{FaultLayer, FaultPoint};
use crate::filter::WatchFilter;
use crate::graph::{DepGraph, GraphEdge};
use crate::handle::{Tracked, TrackedArray, TrackedMatrix};
use crate::heap::TrackedHeap;
use crate::mem::ShardedMem;
use crate::obs::{EventKind, ObsRecorder, ObsRecording};
use crate::pod::Pod;
use crate::queue::{CoalescingQueue, PushOutcome};
use crate::stats::{AccessCounters, Counters, StatsSnapshot};
use crate::trigger::{LookupScratch, TriggerTable};
use crate::tthread::{StatusTable, TthreadId, TthreadStatus};

/// How a [`Runtime::join`] call was satisfied.
///
/// With the parallel executor in its default detached mode
/// ([`Config::detached_execution`]), worker executions run off the state
/// lock against a snapshot and *commit* their effects atomically under the
/// lock; `join` observes a tthread's effects if and only if its commit
/// happened before the join's status check. See the [`Runtime`] docs for
/// the full memory-consistency contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinOutcome {
    /// No trigger fired since the last execution: the computation was
    /// skipped entirely. This is the paper's redundant-computation
    /// elimination.
    Skipped,
    /// A worker finished (committed) the recomputation before the main
    /// thread asked for it: the work was fully overlapped with main-thread
    /// progress.
    Overlapped,
    /// The tthread was in the triggered state and ran on the calling thread
    /// at the join point (deferred executor, or `DeferToJoin` overflow).
    RanInline,
    /// The tthread was still queued; the calling thread stole it from the
    /// queue and ran it itself.
    Stolen,
    /// The calling thread waited for a running worker to finish.
    Waited,
}

type TthreadFn<U> = Arc<dyn Fn(&mut Ctx<'_, U>) + Send + Sync>;

pub(crate) struct TthreadEntry<U> {
    name: String,
    func: TthreadFn<U>,
}

/// The genuinely serial part of the runtime, behind the state lock: the
/// tthread status machine, the pending queue, user state, and the
/// state-machine counters.
///
/// Tracked memory ([`ShardedMem`]), the trigger table, and the access-side
/// counters live *outside* this lock (in [`Inner`]) so tracked loads and
/// stores scale across threads; only trigger *raising* — advancing the
/// status machine — comes back here.
pub struct State<U> {
    pub(crate) user: U,
    pub(crate) tst: StatusTable,
    pub(crate) queue: CoalescingQueue,
    pub(crate) stats: Counters,
    /// Pool of reusable trigger-lookup scratch buffers for lock-holding
    /// dispatch paths (main-thread stores, commits, cascades).
    pub(crate) scratch: Vec<LookupScratch>,
    /// Reusable encode buffer for the vectorized bulk store path
    /// ([`Ctx::write_slice`]): amortizes the per-call allocation and
    /// zero-fill across bulk stores.
    pub(crate) bulk_scratch: Vec<u8>,
    /// The incremental computation graph: declared edge map, per-epoch
    /// wave dedup state and wave depths (see [`crate::graph`]). Commits,
    /// watch installation and trigger raising all already hold this lock,
    /// which is exactly the serialization the wave bookkeeping needs.
    pub(crate) graph: DepGraph,
}

pub(crate) struct Inner<U> {
    pub(crate) cfg: Config,
    pub(crate) state: Mutex<State<U>>,
    /// Sharded tracked memory: loads/stores never take the state lock.
    pub(crate) mem: ShardedMem,
    /// Read-mostly trigger table: stores take the read lock for lookup,
    /// `watch`/`unwatch` take the write lock. Lock order: state lock (if
    /// held) strictly before this lock; never acquire the state lock while
    /// holding this one.
    pub(crate) triggers: RwLock<TriggerTable>,
    /// Lock-free two-level watched-address filter (page bitmap sized to
    /// the arena, per-page 64-byte-line bits — see [`crate::filter`]).
    /// Stores whose probe misses skip the trigger-table read lock
    /// entirely. Maintained by `watch` (or-in) and `unwatch` (span
    /// rebuild); may over-approximate, never under-approximates an active
    /// watch.
    pub(crate) watch_filter: WatchFilter,
    /// Sharded access-side counters, folded into `State::stats` on demand.
    pub(crate) access: AccessCounters,
    /// Lifecycle event recorder (see [`crate::obs`]). Every hook checks
    /// `obs.on()` — one relaxed load — before doing any observability work.
    pub(crate) obs: ObsRecorder,
    /// Deterministic fault engine (see [`crate::fault`]). Every injection
    /// probe checks `fault.fire()` — one relaxed load when no plan is
    /// installed. Shared with the obs recorder for the ring-publish probe.
    pub(crate) fault: Arc<FaultLayer>,
    /// The lock-free dispatch half of the TST: per-tthread atomic status
    /// words, the sharded pending queue, the worker eventcount, and the
    /// sharded dispatch counters. The status words are authoritative in
    /// *both* dispatch modes (the locked baseline mutates them under the
    /// state lock); the pending queue and eventcount are used only when
    /// [`Config::lockfree_dispatch`] is on.
    pub(crate) dispatch: Dispatch,
    tthreads: RwLock<Vec<TthreadEntry<U>>>,
    pub(crate) work_cv: Condvar,
    pub(crate) done_cv: Condvar,
    shutdown: AtomicBool,
}

/// Outcome of [`Inner::raise_lockfree`].
pub(crate) enum LockfreeRaise {
    /// The trigger was fully handled on the lock-free path. `coalesced`
    /// reports whether it was absorbed by an already-pending instance
    /// (cascade accounting classifies the raise with it).
    Done { coalesced: bool },
    /// The tthread advanced Clean→Queued but no queue entry landed
    /// (injected or real overflow). The caller must apply the overflow
    /// policy under the state lock, validating transitions with `token`.
    Overflow(u64),
}

impl<U> Inner<U> {
    pub(crate) fn tthread_fn(&self, id: TthreadId) -> TthreadFn<U> {
        Arc::clone(&self.tthreads.read()[id.index()].func)
    }

    /// Advances `id`'s status machine for one trigger without the state
    /// lock: the tentpole fast path. Counts the per-tthread trigger and
    /// the dispatch-side machinery counters in the sharded atomic slots.
    pub(crate) fn raise_lockfree(&self, id: TthreadId) -> LockfreeRaise {
        let slot = self.dispatch.slots.slot(id.index());
        slot.triggers.fetch_add(1, Ordering::Relaxed);
        match slot.raise(self.cfg.is_deferred(), !self.cfg.coalesce) {
            RaiseStep::Absorbed => {
                self.dispatch.counters.coalesced(id.index());
                if self.obs.on() {
                    self.obs
                        .record(self.obs.status_ring(), EventKind::Coalesced, Some(id), 0);
                }
                LockfreeRaise::Done { coalesced: true }
            }
            RaiseStep::Deferred => LockfreeRaise::Done { coalesced: false },
            RaiseStep::Enqueue(token) => {
                // Injected saturation: report the queue full without
                // consuming a slot, driving the overflow policy on an
                // otherwise-healthy queue.
                if self.fault.fire(FaultPoint::Enqueue) {
                    return LockfreeRaise::Overflow(token);
                }
                match self.dispatch.pending.push(id.index() as u32, token) {
                    PendingPush::Pushed => {
                        self.dispatch.counters.enqueued(id.index());
                        if self.obs.on() {
                            let occupancy = self.dispatch.pending.len() as u64;
                            self.obs.record(
                                self.obs.status_ring(),
                                EventKind::TriggerEnqueued,
                                Some(id),
                                occupancy,
                            );
                        }
                        self.wake_worker(id.index());
                        LockfreeRaise::Done { coalesced: false }
                    }
                    PendingPush::Full => LockfreeRaise::Overflow(token),
                }
            }
        }
    }

    /// Wakes at most one parked worker for a newly enqueued unit — never
    /// for silent or coalesced stores, which don't reach this. Subject to
    /// the [`FaultPoint::WakeDrop`] injection, which drops the wake
    /// entirely (epoch bump included); the workers' timed park bounds the
    /// damage to one park period.
    pub(crate) fn wake_worker(&self, key: usize) {
        if self.fault.fire(FaultPoint::WakeDrop) {
            return;
        }
        if !self.cfg.work_stealing && self.cfg.workers > 1 {
            // No-stealing ablation: work is poppable only by the shard's
            // owner, but the eventcount cannot target a specific sleeper.
            // Broadcast so the owner is among the woken; the others fail
            // their local-occupancy predicate and go straight back to
            // sleep. (With stealing on, any single woken worker can run —
            // or steal — the new entry, so one wake suffices.)
            let had_sleepers = self.dispatch.waiters.sleeping() > 0;
            self.dispatch.waiters.wake_all();
            if had_sleepers {
                self.dispatch.counters.worker_wake(key);
            }
            return;
        }
        if self.dispatch.waiters.wake_one() {
            self.dispatch.counters.worker_wake(key);
        }
    }

    /// Broadcasts the completion eventcount after a transition out of
    /// Running, waking lock-free joiners parked in [`Runtime::join`] /
    /// [`Runtime::force`]. A broadcast (not a single wake) because the
    /// eventcount is shared by joins on every tthread; the joiner's
    /// predicate ("did *my* slot's word move?") filters spurious wakes.
    /// Subject to the [`FaultPoint::JoinWake`] injection, which drops the
    /// broadcast entirely; the joiner's timed park bounds the damage to
    /// one park period.
    pub(crate) fn wake_joiners(&self) {
        if self.fault.fire(FaultPoint::JoinWake) {
            return;
        }
        self.dispatch.completions.wake_all();
    }
}

/// The data-triggered-threads runtime.
///
/// Generic over an untracked user state `U`, available to tthread bodies and
/// main-thread regions via [`Ctx::user_mut`]. Data whose changes should
/// *trigger* recomputation lives in tracked memory instead, allocated with
/// [`Runtime::alloc`]/[`Runtime::alloc_array`].
///
/// # Examples
///
/// ```
/// use dtt_core::{Config, JoinOutcome, Runtime};
///
/// // Untracked user state: the published sum.
/// let mut rt = Runtime::new(Config::default(), 0u64);
/// let xs = rt.alloc_array::<u32>(8).unwrap();
///
/// // A tthread that recomputes the sum of `xs` whenever any element changes.
/// let sum = rt.register("sum", move |ctx| {
///     let total: u64 = (0..xs.len()).map(|i| ctx.read(xs, i) as u64).sum();
///     *ctx.user_mut() = total;
/// });
/// rt.watch(sum, xs.range()).unwrap();
///
/// rt.with(|ctx| ctx.write(xs, 3, 10));
/// assert_eq!(rt.join(sum).unwrap(), JoinOutcome::RanInline);
/// assert_eq!(rt.with(|ctx| *ctx.user()), 10);
///
/// // Writing the same value is a silent store: nothing to recompute.
/// rt.with(|ctx| ctx.write(xs, 3, 10));
/// assert_eq!(rt.join(sum).unwrap(), JoinOutcome::Skipped);
/// ```
///
/// # Memory-consistency contract (parallel executor)
///
/// With `cfg.workers > 0` and the default detached execution mode
/// ([`Config::detached_execution`]), a tthread body running on a worker:
///
/// * observes a **snapshot** of tracked memory taken atomically when its
///   execution starts, plus its own writes — never a concurrent
///   main-thread store tearing through its reads;
/// * publishes its tracked stores **atomically at commit**, after the body
///   returns: the worker reacquires the state lock, replays the body's
///   write log against live memory, and fires triggers for the stores that
///   still change it (a store another thread already made redundant is
///   counted as a commit conflict and fires nothing);
/// * sees the **live, shared** user state `U` through
///   [`Ctx::user`]/[`Ctx::user_mut`] — first access acquires the state
///   lock and holds it until the commit, so user-state updates serialize
///   with main-thread regions;
/// * is **re-executed** (with a fresh snapshot) if a trigger landed on it
///   while it ran, so a committed execution always reflects inputs no
///   older than its last trigger;
/// * publishes **nothing** if it panics: the tthread is poisoned and the
///   partial write log is discarded, making detached executions atomic.
///
/// Main-thread regions ([`Runtime::with`]) always run under the state
/// lock and see every commit that happened before the region started;
/// [`Runtime::join`] returning guarantees the joined tthread's effects
/// (for its triggers so far) are visible. The legacy attached mode
/// (`detached_execution = false`) instead holds the state lock across the
/// whole body — serializing workers against the main thread — and is kept
/// as an ablation baseline.
pub struct Runtime<U> {
    inner: Arc<Inner<U>>,
    pool: WorkerPool<U>,
}

/// Owns the worker threads; dropping it shuts them down and joins them.
struct WorkerPool<U> {
    inner: Arc<Inner<U>>,
    handles: Vec<thread::JoinHandle<()>>,
}

impl<U> Drop for WorkerPool<U> {
    fn drop(&mut self) {
        if self.handles.is_empty() {
            return;
        }
        self.inner.shutdown.store(true, Ordering::SeqCst);
        {
            // Take the lock so no worker misses the flag between its check
            // and its wait.
            let _state = self.inner.state.lock();
            self.inner.work_cv.notify_all();
        }
        // Lock-free workers park on the eventcount instead of `work_cv`.
        // *Close* it rather than merely waking: a closed eventcount
        // refuses every future park, so a worker that checks the shutdown
        // flag just before it is set still cannot oversleep — quiesce is
        // prompt instead of costing up to one park timeout.
        self.inner.dispatch.waiters.close();
        self.inner.dispatch.completions.close();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl<U: Send + 'static> Runtime<U> {
    /// Creates a runtime with the given configuration and user state.
    ///
    /// With `cfg.workers == 0` the *deferred* executor is selected:
    /// triggered tthreads run on the calling thread at their join point,
    /// deterministically. With `cfg.workers > 0`, that many OS worker
    /// threads execute triggered tthreads eagerly.
    pub fn new(cfg: Config, user: U) -> Self {
        let state = State {
            user,
            tst: StatusTable::new(),
            queue: CoalescingQueue::new(cfg.queue_capacity, cfg.coalesce),
            stats: Counters::new(),
            scratch: Vec::new(),
            bulk_scratch: Vec::new(),
            graph: DepGraph::new(cfg.granularity),
        };
        let mem = ShardedMem::new(cfg.arena_capacity, cfg.mem_shards, cfg.simd_store);
        let triggers = RwLock::new(TriggerTable::new(cfg.granularity));
        let watch_filter = WatchFilter::new(cfg.arena_capacity);
        let access = AccessCounters::new(cfg.mem_shards);
        // One ring per memory shard (store events hash by address) plus one
        // for the trigger/status machine.
        let obs = ObsRecorder::new(mem.shards(), cfg.obs_ring_capacity);
        if cfg.observability {
            obs.set_enabled(true);
        }
        let fault = Arc::new(match &cfg.fault_plan {
            Some(plan) => FaultLayer::from_plan(plan),
            None => FaultLayer::disarmed(),
        });
        obs.attach_fault(Arc::clone(&fault));
        let workers = cfg.workers;
        // One pending-queue shard per worker (rounded up to a power of two
        // by the queue), capped so a huge pool doesn't fragment the scan.
        let dispatch = Dispatch::new(cfg.queue_capacity, workers.clamp(1, 16));
        let inner = Arc::new(Inner {
            cfg,
            state: Mutex::new(state),
            mem,
            triggers,
            watch_filter,
            access,
            obs,
            fault,
            dispatch,
            tthreads: RwLock::new(Vec::new()),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                thread::Builder::new()
                    .name(format!("dtt-worker-{i}"))
                    .spawn(move || worker_loop(inner, i))
                    .expect("failed to spawn dtt worker")
            })
            .collect();
        let pool = WorkerPool {
            inner: Arc::clone(&inner),
            handles,
        };
        Runtime { inner, pool }
    }

    /// The runtime's configuration.
    pub fn config(&self) -> &Config {
        &self.inner.cfg
    }

    /// The effective tracked-memory shard count (normalized power of two;
    /// see [`Config::mem_shards`]).
    pub fn mem_shards(&self) -> usize {
        self.inner.mem.shards()
    }

    /// Allocates a tracked scalar initialized to `init` (without firing
    /// triggers — nothing can be watching it yet).
    ///
    /// # Errors
    ///
    /// Returns [`Error::ArenaExhausted`] when the arena capacity is reached.
    pub fn alloc<T: Pod>(&mut self, init: T) -> Result<Tracked<T>> {
        let align = (T::SIZE as u64).next_power_of_two().min(8);
        let addr = self.inner.mem.alloc(T::SIZE as u64, align)?;
        self.inner.mem.store(addr, init, false);
        Ok(Tracked::new(addr))
    }

    /// Allocates a zeroed tracked array of `len` elements.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ArenaExhausted`] when the arena capacity is reached.
    pub fn alloc_array<T: Pod>(&mut self, len: usize) -> Result<TrackedArray<T>> {
        let align = (T::SIZE as u64).next_power_of_two().min(8);
        let addr = self.inner.mem.alloc((len * T::SIZE) as u64, align)?;
        Ok(TrackedArray::new(addr, len))
    }

    /// Allocates a zeroed row-major tracked matrix of `rows × cols`
    /// elements. Rows are contiguous, so per-row trigger regions
    /// ([`crate::handle::TrackedMatrix::row_range`]) are compact.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ArenaExhausted`] when the arena capacity is reached.
    pub fn alloc_matrix<T: Pod>(&mut self, rows: usize, cols: usize) -> Result<TrackedMatrix<T>> {
        let align = (T::SIZE as u64).next_power_of_two().min(8);
        let addr = self
            .inner
            .mem
            .alloc((rows * cols * T::SIZE) as u64, align)?;
        Ok(TrackedMatrix::new(addr, rows, cols))
    }

    /// Allocates a tracked array initialized from `data` (without firing
    /// triggers).
    ///
    /// # Errors
    ///
    /// Returns [`Error::ArenaExhausted`] when the arena capacity is reached.
    pub fn alloc_array_from<T: Pod>(&mut self, data: &[T]) -> Result<TrackedArray<T>> {
        let array = self.alloc_array::<T>(data.len())?;
        for (i, &v) in data.iter().enumerate() {
            self.inner.mem.store(array.at(i).addr(), v, false);
        }
        Ok(array)
    }

    /// Registers a data-triggered thread and returns its id.
    ///
    /// The body runs with exclusive access to the runtime state via
    /// [`Ctx`]. Registration alone never executes the body; attach trigger
    /// regions with [`Runtime::watch`].
    pub fn register<F>(&mut self, name: &str, body: F) -> TthreadId
    where
        F: Fn(&mut Ctx<'_, U>) + Send + Sync + 'static,
    {
        let mut state = self.inner.state.lock();
        let id = state.tst.push();
        state.graph.ensure(id.index());
        // Materialize the slot now so every later access is lock-free.
        self.inner.dispatch.slots.ensure(id.index());
        self.inner.tthreads.write().push(TthreadEntry {
            name: name.to_owned(),
            func: Arc::new(body),
        });
        id
    }

    /// Attaches a trigger region: stores that change bytes in `range` (as
    /// seen at the configured granularity) fire `tthread`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownTthread`] for a foreign id,
    /// [`Error::RegionOutOfBounds`] for a region outside the arena, and
    /// [`Error::TriggerCycle`] if the watch, combined with the output
    /// regions declared via [`Runtime::declare_output`], would close a
    /// cross-tthread trigger cycle (the watch is not installed).
    pub fn watch(&mut self, tthread: TthreadId, range: AddrRange) -> Result<()> {
        // The state lock is held across the trigger-table write so watches
        // serialize with in-flight trigger raising (lock order: state lock,
        // then trigger-table lock).
        let mut state = self.inner.state.lock();
        if !state.tst.contains(tthread) {
            return Err(Error::UnknownTthread(tthread));
        }
        self.inner.mem.check_range(range)?;
        // Watch-time cycle check: mirror the region into the declared edge
        // map first and DFS from the reader; reject *before* the trigger
        // table or the filter see the watch, so a rejected edge leaves no
        // trace. Self-loops are exempt (see [`crate::graph`]).
        state.graph.add_watch(tthread, range);
        if let Some(path) = state.graph.find_cycle(tthread) {
            state.graph.remove_watch(tthread, range);
            state.stats.trigger_cycles_rejected += 1;
            return Err(Error::TriggerCycle { path });
        }
        self.inner.triggers.write().watch(tthread, range);
        self.inner
            .watch_filter
            .watch(range, self.inner.cfg.granularity);
        Ok(())
    }

    /// Declares `range` as an *output* region of `tthread`: a region its
    /// body stores into. Declarations feed the incremental computation
    /// graph's edge map (see [`crate::graph`]) — an output of one tthread
    /// overlapping the watch of another forms a dependency edge, and edge
    /// installation is where trigger cycles are rejected. Declaring
    /// outputs is optional: cascades fire from the committed stores
    /// themselves; undeclared edges are simply invisible to the cycle
    /// check (the commit-retry cap backstops dynamic cycles at runtime).
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownTthread`] for a foreign id,
    /// [`Error::RegionOutOfBounds`] for a region outside the arena, and
    /// [`Error::TriggerCycle`] if the declaration would close a
    /// cross-tthread trigger cycle (the declaration is discarded).
    pub fn declare_output(&mut self, tthread: TthreadId, range: AddrRange) -> Result<()> {
        let mut state = self.inner.state.lock();
        if !state.tst.contains(tthread) {
            return Err(Error::UnknownTthread(tthread));
        }
        self.inner.mem.check_range(range)?;
        state.graph.add_output(tthread, range);
        if let Some(path) = state.graph.find_cycle(tthread) {
            state.graph.remove_output(tthread, range);
            state.stats.trigger_cycles_rejected += 1;
            return Err(Error::TriggerCycle { path });
        }
        Ok(())
    }

    /// The declared dependency edges of the incremental computation graph,
    /// writer-major (see [`Runtime::declare_output`]).
    pub fn graph_edges(&self) -> Vec<GraphEdge> {
        self.inner.state.lock().graph.edges()
    }

    /// Detaches a previously attached trigger region.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownTthread`] for a foreign id and
    /// [`Error::NoSuchWatch`] if the exact region was not watched.
    pub fn unwatch(&mut self, tthread: TthreadId, range: AddrRange) -> Result<()> {
        let mut state = self.inner.state.lock();
        if !state.tst.contains(tthread) {
            return Err(Error::UnknownTthread(tthread));
        }
        let mut triggers = self.inner.triggers.write();
        triggers.unwatch(tthread, range)?;
        state.graph.remove_watch(tthread, range);
        // Rebuild only the removed watch's filter span from the surviving
        // ranges; the state lock serializes this with other mutators while
        // probes keep running lock-free.
        let remaining: Vec<AddrRange> = triggers.iter().map(|(_, r)| r).collect();
        drop(triggers);
        self.inner
            .watch_filter
            .rebuild(range, self.inner.cfg.granularity, &remaining);
        Ok(())
    }

    /// Runs a main-thread region with access to tracked memory and user
    /// state.
    ///
    /// Stores inside the region fire triggers as they happen. Do not call
    /// other `Runtime` methods from inside the closure (the state lock is
    /// held).
    pub fn with<R>(&mut self, f: impl FnOnce(&mut Ctx<'_, U>) -> R) -> R {
        let mut state = self.inner.state.lock();
        let mut ctx = Ctx::new(&mut state, &self.inner, 0);
        f(&mut ctx)
    }

    /// Convenience: loads one tracked scalar.
    pub fn read<T: Pod>(&mut self, cell: Tracked<T>) -> T {
        self.with(|ctx| ctx.get(cell))
    }

    /// Convenience: stores one tracked scalar (firing triggers).
    pub fn write<T: Pod>(&mut self, cell: Tracked<T>, value: T) {
        self.with(|ctx| ctx.set(cell, value));
    }

    /// Creates a concurrent [`Accessor`] over tracked memory.
    ///
    /// Unlike [`Runtime::with`], an accessor never holds the global state
    /// lock on the load/store fast path: it goes straight at the sharded
    /// arena, so accessors on different threads (and on different address
    /// shards) proceed in parallel. Create one accessor per thread — the
    /// accessor carries reusable lookup scratch and is not itself shareable.
    /// See [`Accessor`] for the memory-ordering contract.
    pub fn accessor(&self) -> Accessor<'_, U> {
        Accessor::new(&self.inner)
    }

    /// The consumption point: ensures `tthread`'s outputs are up to date.
    ///
    /// * never triggered since its last run → **skip** (the elimination of
    ///   redundant computation);
    /// * completed on a worker → nothing to do, the work was overlapped;
    /// * triggered / still queued → run it on the calling thread now;
    /// * running on a worker → wait for it.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownTthread`] for a foreign id,
    /// [`Error::TthreadPoisoned`] if a previous execution of the tthread
    /// panicked (see [`Runtime::clear_poison`]) and
    /// [`Error::TthreadTimedOut`] if a previous execution overran the
    /// configured body deadline (see [`Runtime::clear_timeout`]).
    pub fn join(&mut self, tthread: TthreadId) -> Result<JoinOutcome> {
        let mut state = self.inner.state.lock();
        if !state.tst.contains(tthread) {
            return Err(Error::UnknownTthread(tthread));
        }
        let lockfree = self.inner.cfg.lockfree_dispatch;
        let slot = self.inner.dispatch.slots.slot(tthread.index());
        let mut waited = false;
        loop {
            if state.tst.entry(tthread).poisoned {
                return Err(Error::TthreadPoisoned(tthread));
            }
            if state.tst.entry(tthread).timed_out {
                return Err(Error::TthreadTimedOut(tthread));
            }
            match slot.status() {
                TthreadStatus::Clean => {
                    // Consume the completed-since-join bit atomically with
                    // the Clean check; a concurrent trigger moving the
                    // state first just sends us around the loop.
                    let Some(overlapped) = slot.take_completed_if_clean() else {
                        continue;
                    };
                    state.stats.joins += 1;
                    if waited {
                        state.stats.waited_joins += 1;
                        self.obs_join(tthread, JoinOutcome::Waited);
                        return Ok(JoinOutcome::Waited);
                    }
                    if overlapped {
                        self.obs_join(tthread, JoinOutcome::Overlapped);
                        return Ok(JoinOutcome::Overlapped);
                    }
                    state.tst.entry_mut(tthread).skips += 1;
                    state.stats.skips += 1;
                    self.obs_join(tthread, JoinOutcome::Skipped);
                    return Ok(JoinOutcome::Skipped);
                }
                TthreadStatus::Triggered => {
                    if !slot.try_claim_from(TthreadStatus::Triggered, true) {
                        continue;
                    }
                    {
                        let mut ctx = Ctx::new(&mut state, &self.inner, 0);
                        ctx.run_inline(tthread);
                    }
                    slot.clear_completed();
                    state.stats.joins += 1;
                    self.obs_join(tthread, JoinOutcome::RanInline);
                    return Ok(JoinOutcome::RanInline);
                }
                TthreadStatus::Queued => {
                    // Only the detached (worker) executor can enforce the
                    // body deadline — an inline run writes straight to live
                    // memory, so there is no write log to discard on
                    // overrun. With a deadline configured, never steal a
                    // queued execution: wait for the worker (which is
                    // guaranteed to exist — zero-worker deferred mode
                    // raises Clean→Triggered and never reaches Queued) to
                    // run it under the deadline. The wait reuses the
                    // Running machinery below: lock-free parks validate
                    // the slot word, which the worker's claim bumps, and
                    // locked mode wakes on the completion broadcast.
                    if self.inner.cfg.body_deadline.is_some() {
                        waited = true;
                        if lockfree {
                            let observed = slot.word();
                            drop(state);
                            let outcome = self
                                .inner
                                .dispatch
                                .completions
                                .park(|| slot.word() != observed, self.inner.cfg.park_timeout);
                            if outcome == ParkOutcome::TimedOut {
                                self.inner.dispatch.counters.park_timeout(tthread.index());
                            }
                            state = self.inner.state.lock();
                        } else {
                            self.inner.done_cv.wait(&mut state);
                        }
                        continue;
                    }
                    // Steal the pending execution. Lock-free mode: the
                    // claim's token bump invalidates the queue entry in
                    // place, so no queue scan is needed — the worker that
                    // eventually pops it skips it as stale. Locked mode:
                    // remove the entry (and its duplicates) directly.
                    // Either way the steal coalesces duplicate triggers
                    // into this one inline run, so the rerun flag clears.
                    if lockfree {
                        if !slot.try_claim_from(TthreadStatus::Queued, true) {
                            continue;
                        }
                    } else {
                        state.queue.remove(tthread);
                        slot.claim();
                    }
                    {
                        let mut ctx = Ctx::new(&mut state, &self.inner, 0);
                        ctx.run_inline(tthread);
                    }
                    slot.clear_completed();
                    state.stats.joins += 1;
                    self.obs_join(tthread, JoinOutcome::Stolen);
                    return Ok(JoinOutcome::Stolen);
                }
                TthreadStatus::Running => {
                    waited = true;
                    if lockfree {
                        // Lock-free wait: release the state lock entirely
                        // and park on the completion eventcount, keyed to
                        // the slot's status *word*. The token bumps on
                        // every state-changing transition, so the word is
                        // a generation counter: if the execution finishes
                        // (or even finishes and retriggers) between our
                        // read and the sleep commit, the word has moved
                        // and the park is skipped. Workers broadcast the
                        // eventcount after every transition out of
                        // Running, and the timed park rescues a dropped
                        // broadcast ([`FaultPoint::JoinWake`]) within one
                        // park period. The joiner thus never blocks while
                        // holding the state lock.
                        let observed = slot.word();
                        drop(state);
                        let outcome = self
                            .inner
                            .dispatch
                            .completions
                            .park(|| slot.word() != observed, self.inner.cfg.park_timeout);
                        if outcome == ParkOutcome::TimedOut {
                            self.inner.dispatch.counters.park_timeout(tthread.index());
                        }
                        state = self.inner.state.lock();
                    } else {
                        self.inner.done_cv.wait(&mut state);
                    }
                }
            }
        }
    }

    /// Records a join outcome into the status-machine ring.
    fn obs_join(&self, tthread: TthreadId, outcome: JoinOutcome) {
        if !self.inner.obs.on() {
            return;
        }
        let ring = self.inner.obs.status_ring();
        match outcome {
            JoinOutcome::Skipped => self
                .inner
                .obs
                .record(ring, EventKind::Skip, Some(tthread), 0),
            JoinOutcome::Overlapped => {
                self.inner
                    .obs
                    .record(ring, EventKind::Join, Some(tthread), 1)
            }
            JoinOutcome::RanInline => {
                self.inner
                    .obs
                    .record(ring, EventKind::Join, Some(tthread), 2)
            }
            JoinOutcome::Stolen => self
                .inner
                .obs
                .record(ring, EventKind::Join, Some(tthread), 3),
            JoinOutcome::Waited => self
                .inner
                .obs
                .record(ring, EventKind::Join, Some(tthread), 4),
        }
    }

    /// Whether lifecycle event recording is currently enabled.
    pub fn is_observing(&self) -> bool {
        self.inner.obs.on()
    }

    /// Enables or disables lifecycle event recording at runtime. The first
    /// enable allocates the per-shard rings; disabling keeps already
    /// recorded events available for [`Runtime::obs_drain`].
    pub fn set_observing(&mut self, on: bool) {
        self.inner.obs.set_enabled(on);
    }

    /// Drains the observability rings into a merged, sequence-ordered
    /// recording (consuming: a second drain returns only newer events).
    /// Analyze it with the `dtt-obs` crate's collector and exporters.
    pub fn obs_drain(&self) -> ObsRecording {
        self.inner.obs.drain()
    }

    /// Joins every registered tthread, in id order.
    ///
    /// # Errors
    ///
    /// Propagates the first error (none are expected for ids issued by this
    /// runtime).
    pub fn join_all(&mut self) -> Result<Vec<(TthreadId, JoinOutcome)>> {
        let ids: Vec<TthreadId> = {
            let state = self.inner.state.lock();
            state.tst.iter().map(|(id, _)| id).collect()
        };
        ids.into_iter()
            .map(|id| self.join(id).map(|o| (id, o)))
            .collect()
    }

    /// Clears the poisoned flag set when a tthread body panicked, making
    /// joins on it possible again. The tthread is left clean; call
    /// [`Runtime::force`] afterwards if its outputs must be rebuilt.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownTthread`] for a foreign id.
    pub fn clear_poison(&mut self, tthread: TthreadId) -> Result<()> {
        let mut state = self.inner.state.lock();
        if !state.tst.contains(tthread) {
            return Err(Error::UnknownTthread(tthread));
        }
        state.tst.entry_mut(tthread).poisoned = false;
        Ok(())
    }

    /// Clears the timed-out flag set when a tthread body overran the
    /// configured deadline, making joins on it possible again. The tthread
    /// is left clean with its *pre-timeout* outputs (the overrunning
    /// execution's write log was discarded); call [`Runtime::force`]
    /// afterwards if its outputs must be rebuilt from current inputs.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownTthread`] for a foreign id.
    pub fn clear_timeout(&mut self, tthread: TthreadId) -> Result<()> {
        let mut state = self.inner.state.lock();
        if !state.tst.contains(tthread) {
            return Err(Error::UnknownTthread(tthread));
        }
        state.tst.entry_mut(tthread).timed_out = false;
        Ok(())
    }

    /// Per-[`FaultPoint`] injected-fault counts, indexed by discriminant
    /// (all zero unless a [`Config::fault_plan`] is installed).
    pub fn fault_injections(&self) -> [u64; FaultPoint::COUNT] {
        self.inner.fault.counts()
    }

    /// Runs `tthread` on the calling thread right now, regardless of its
    /// trigger state (waits first if a worker is mid-execution).
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownTthread`] for a foreign id,
    /// [`Error::TthreadPoisoned`] after a panicked execution and
    /// [`Error::TthreadTimedOut`] after a deadline-flagged one.
    pub fn force(&mut self, tthread: TthreadId) -> Result<()> {
        let mut state = self.inner.state.lock();
        if !state.tst.contains(tthread) {
            return Err(Error::UnknownTthread(tthread));
        }
        if state.tst.entry(tthread).poisoned {
            return Err(Error::TthreadPoisoned(tthread));
        }
        if state.tst.entry(tthread).timed_out {
            return Err(Error::TthreadTimedOut(tthread));
        }
        let lockfree = self.inner.cfg.lockfree_dispatch;
        let slot = self.inner.dispatch.slots.slot(tthread.index());
        loop {
            match slot.status() {
                TthreadStatus::Running => {
                    if lockfree {
                        // Same lock-free wait as `join`: park on the
                        // completion eventcount against the status word,
                        // never holding the state lock while blocked.
                        let observed = slot.word();
                        drop(state);
                        let outcome = self
                            .inner
                            .dispatch
                            .completions
                            .park(|| slot.word() != observed, self.inner.cfg.park_timeout);
                        if outcome == ParkOutcome::TimedOut {
                            self.inner.dispatch.counters.park_timeout(tthread.index());
                        }
                        state = self.inner.state.lock();
                    } else {
                        self.inner.done_cv.wait(&mut state);
                    }
                }
                status => {
                    if lockfree {
                        // Claim whatever state the tthread is in; a stale
                        // queue entry (if any) dies with the token bump.
                        if slot.try_claim_from(status, true) {
                            break;
                        }
                    } else {
                        if status == TthreadStatus::Queued {
                            state.queue.remove(tthread);
                        }
                        slot.claim();
                        break;
                    }
                }
            }
        }
        {
            let mut ctx = Ctx::new(&mut state, &self.inner, 0);
            ctx.run_inline(tthread);
        }
        slot.clear_completed();
        Ok(())
    }

    /// Raises a trigger for `tthread` as if a watched value had changed.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownTthread`] for a foreign id.
    pub fn mark_dirty(&mut self, tthread: TthreadId) -> Result<()> {
        let mut state = self.inner.state.lock();
        if !state.tst.contains(tthread) {
            return Err(Error::UnknownTthread(tthread));
        }
        let mut ctx = Ctx::new(&mut state, &self.inner, 0);
        ctx.raise(tthread);
        Ok(())
    }

    /// Current status of `tthread` in the thread status table.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownTthread`] for a foreign id.
    pub fn status(&self, tthread: TthreadId) -> Result<TthreadStatus> {
        let state = self.inner.state.lock();
        if !state.tst.contains(tthread) {
            return Err(Error::UnknownTthread(tthread));
        }
        drop(state);
        Ok(self.inner.dispatch.slots.slot(tthread.index()).status())
    }

    /// Name the tthread was registered with.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownTthread`] for a foreign id.
    pub fn tthread_name(&self, tthread: TthreadId) -> Result<String> {
        let names = self.inner.tthreads.read();
        names
            .get(tthread.index())
            .map(|e| e.name.clone())
            .ok_or(Error::UnknownTthread(tthread))
    }

    /// Number of registered tthreads.
    pub fn tthread_count(&self) -> usize {
        self.inner.tthreads.read().len()
    }

    /// Per-tthread execution/skip/trigger counts, in id order.
    pub fn tthread_counters(&self) -> Vec<(TthreadId, u64, u64, u64)> {
        let state = self.inner.state.lock();
        state
            .tst
            .iter()
            .map(|(id, e)| {
                let triggers = self
                    .inner
                    .dispatch
                    .slots
                    .slot(id.index())
                    .triggers
                    .load(Ordering::Relaxed);
                (id, e.executions, e.skips, triggers)
            })
            .collect()
    }

    /// Produces a diagnostic snapshot of the whole runtime: tthread
    /// statuses, watched regions, queue occupancy, arena usage and
    /// counters. Intended for debugging and logging; see
    /// [`crate::report::RuntimeReport`].
    pub fn report(&self) -> crate::report::RuntimeReport {
        let state = self.inner.state.lock();
        let names = self.inner.tthreads.read();
        let triggers = self.inner.triggers.read();
        let tthreads = state
            .tst
            .iter()
            .map(|(id, entry)| {
                let watches = triggers
                    .iter()
                    .filter(|(t, _)| *t == id)
                    .map(|(_, range)| range)
                    .collect();
                let slot = self.inner.dispatch.slots.slot(id.index());
                crate::report::TthreadReportRow {
                    name: names
                        .get(id.index())
                        .map(|e| e.name.clone())
                        .unwrap_or_default(),
                    status: slot.status(),
                    poisoned: entry.poisoned,
                    timed_out: entry.timed_out,
                    executions: entry.executions,
                    epoch: entry.epoch,
                    skips: entry.skips,
                    triggers: slot.triggers.load(Ordering::Relaxed),
                    watches,
                }
            })
            .collect();
        let mut stats = state.stats.clone();
        self.inner.access.fold_into(&mut stats);
        self.inner.dispatch.counters.fold_into(&mut stats);
        // The pending structure in use depends on the dispatch mode.
        let (queue_len, queue_capacity, queue_high_watermark) = if self.inner.cfg.lockfree_dispatch
        {
            let pending = &self.inner.dispatch.pending;
            (pending.len(), pending.capacity(), pending.high_watermark())
        } else {
            (
                state.queue.len(),
                state.queue.capacity(),
                state.queue.high_watermark(),
            )
        };
        crate::report::RuntimeReport {
            tthreads,
            queue_len,
            queue_capacity,
            queue_high_watermark,
            arena_used: self.inner.mem.len(),
            arena_capacity: self.inner.mem.capacity(),
            workers: self.inner.cfg.workers,
            stats: stats.snapshot(),
        }
    }

    /// Snapshot of the global runtime statistics (the sharded access-side
    /// counters are folded in, so the snapshot is exact).
    pub fn stats(&self) -> StatsSnapshot {
        let state = self.inner.state.lock();
        let mut stats = state.stats.clone();
        self.inner.access.fold_into(&mut stats);
        self.inner.dispatch.counters.fold_into(&mut stats);
        stats.snapshot()
    }

    /// Returns `(atomic_len, physical_len)` of the lock-free pending
    /// queue: the reservation counter and the number of entries actually
    /// present in the shards. At any quiescent point (no in-flight push,
    /// pop or steal) the two must be equal — the consistency identity the
    /// proptest suite asserts to rule out double-decrements on the
    /// stale-skip, steal and overflow paths. (An audit of those paths
    /// found the accounting balanced: pops and steals decrement exactly
    /// once for the entry they remove, overflow sheds decrement the
    /// reservation they made, stale skips decrement nothing — the entry
    /// was already popped. This accessor pins that invariant.)
    #[doc(hidden)]
    pub fn pending_queue_consistency(&self) -> (usize, usize) {
        let pending = &self.inner.dispatch.pending;
        (pending.len(), pending.physical_len())
    }

    /// Zeroes the global statistics (per-tthread counters are kept).
    pub fn reset_stats(&mut self) {
        let mut state = self.inner.state.lock();
        state.stats = Counters::new();
        self.inner.access.reset();
        self.inner.dispatch.counters.reset();
    }

    /// Shuts the workers down and returns the tracked heap and user state.
    ///
    /// Blocks until every worker has exited (a worker mid-body finishes its
    /// current execution first). Pending (queued but unexecuted) tthreads
    /// are *not* run; call [`Runtime::join_all`] first if their outputs
    /// matter. For a bounded wait use [`Runtime::shutdown`].
    pub fn into_state(self) -> (TrackedHeap, U) {
        self.teardown(None)
            .expect("workers joined without a deadline; no references can remain")
    }

    /// Gracefully shuts the runtime down, waiting at most `timeout` for the
    /// workers to drain, and returns the tracked heap and user state.
    ///
    /// Pending tthreads are *not* run (see [`Runtime::into_state`]).
    ///
    /// # Errors
    ///
    /// Returns [`Error::WorkersStillActive`] if some worker is still mid-
    /// execution at the deadline. The stragglers are detached — they exit
    /// on their own once their current body finishes and they observe the
    /// shutdown flag — but the heap and user state are torn down with them
    /// and cannot be returned.
    pub fn shutdown(self, timeout: Duration) -> Result<(TrackedHeap, U)> {
        self.teardown(Some(timeout))
    }

    /// Drains the worker pool in place, waiting at most `timeout` for the
    /// workers to exit, and leaves the runtime usable as a deferred
    /// executor (pending tthreads still run at their join points).
    ///
    /// **Idempotent**: a second call — a drain path racing a signal
    /// handler, or a drain followed by [`Runtime::shutdown`] — finds no
    /// handles and returns `Ok` immediately without re-signalling or
    /// re-closing the dispatch eventcounts. The serve front-end's
    /// drain-mode shutdown leans on this: it can always drain defensively
    /// without tracking whether another path got there first.
    ///
    /// # Errors
    ///
    /// Returns [`Error::WorkersStillActive`] if some worker is still mid-
    /// execution at the deadline. The stragglers are detached and exit on
    /// their own once their current body finishes.
    pub fn drain(&mut self, timeout: Duration) -> Result<()> {
        let handles: Vec<_> = self.pool.handles.drain(..).collect();
        if handles.is_empty() {
            // Already drained (or a deferred executor): nothing to signal.
            return Ok(());
        }
        Self::signal_shutdown(&self.inner);
        // `self.inner` and `pool.inner` both survive a drain, so two
        // residual references are a clean exit (the consuming teardown
        // requires exactly one).
        Self::join_worker_handles(&self.inner, handles, Some(timeout), 2)
    }

    /// Signals shutdown to the worker pool: sets the sticky flag under the
    /// state lock (so no worker misses it between its check and its wait),
    /// wakes the condvar parkers, and closes both dispatch eventcounts so
    /// no late parker can oversleep — see `WorkerPool::drop`. Safe to call
    /// more than once: `Waiters::close` is idempotent.
    fn signal_shutdown(inner: &Inner<U>) {
        inner.shutdown.store(true, Ordering::SeqCst);
        {
            let _state = inner.state.lock();
            inner.work_cv.notify_all();
        }
        inner.dispatch.waiters.close();
        inner.dispatch.completions.close();
    }

    /// Joins (or deadline-polls) the drained worker handles.
    ///
    /// With a timeout, also waits for the inner `Arc` to shed the workers'
    /// clones down to `max_residual_refs`: a finished worker may not have
    /// released its clone yet, and the consuming teardown's `try_unwrap`
    /// must not race a clean drain.
    fn join_worker_handles(
        inner: &Arc<Inner<U>>,
        handles: Vec<thread::JoinHandle<()>>,
        timeout: Option<Duration>,
        max_residual_refs: usize,
    ) -> Result<()> {
        match timeout {
            None => {
                for handle in handles {
                    let _ = handle.join();
                }
                Ok(())
            }
            Some(timeout) => {
                let deadline = Instant::now() + timeout;
                let mut remaining = handles;
                loop {
                    remaining.retain(|h| !h.is_finished());
                    if remaining.is_empty() && Arc::strong_count(inner) <= max_residual_refs {
                        return Ok(());
                    }
                    if Instant::now() >= deadline {
                        let active = remaining
                            .len()
                            .max(Arc::strong_count(inner).saturating_sub(max_residual_refs));
                        drop(remaining); // detach the stragglers
                        return Err(Error::WorkersStillActive { active });
                    }
                    thread::sleep(Duration::from_millis(1));
                }
            }
        }
    }

    fn teardown(self, timeout: Option<Duration>) -> Result<(TrackedHeap, U)> {
        let Runtime { inner, mut pool } = self;
        let handles: Vec<_> = pool.handles.drain(..).collect();
        drop(pool); // handles drained: only releases the pool's Arc clone
        if !handles.is_empty() {
            Self::signal_shutdown(&inner);
            Self::join_worker_handles(&inner, handles, timeout, 1)?;
        }
        let inner = Arc::try_unwrap(inner).map_err(|arc| Error::WorkersStillActive {
            // One count is the `arc` binding itself; the rest are workers
            // that finished their loop but have not fully exited yet.
            active: Arc::strong_count(&arc).saturating_sub(1),
        })?;
        let heap = inner.mem.snapshot();
        let state = inner.state.into_inner();
        Ok((heap, state.user))
    }
}

impl<U> std::fmt::Debug for Runtime<U> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("workers", &self.pool.handles.len())
            .field("tthreads", &self.inner.tthreads.read().len())
            .finish()
    }
}

fn worker_loop<U: Send + 'static>(inner: Arc<Inner<U>>, worker_idx: usize) {
    if inner.cfg.lockfree_dispatch {
        worker_loop_lockfree(&inner, worker_idx);
    } else {
        worker_loop_locked(&inner);
    }
}

/// The locked-baseline worker: holds the state lock across pop, claim and
/// (in attached mode) the whole body. Kept bit-for-bit behaviourally
/// compatible as the ablation baseline for `Config::lockfree_dispatch`.
fn worker_loop_locked<U: Send + 'static>(inner: &Arc<Inner<U>>) {
    let mut state = inner.state.lock();
    loop {
        if inner.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let Some(id) = state.queue.pop() else {
            state.stats.worker_parks += 1;
            inner.work_cv.wait(&mut state);
            continue;
        };
        if inner.fault.fire(FaultPoint::Dequeue) {
            // Injected dequeue rejection: push the tthread straight back
            // (the slot we just freed is still ours — the state lock is
            // held) and retry, exercising the requeue path. The outcome is
            // handled explicitly: a `Full` requeue means the entry would
            // be lost and the tthread stranded in Queued forever, so the
            // worker must fall through and run it itself.
            match state.queue.push(id) {
                PushOutcome::Enqueued | PushOutcome::Coalesced => continue,
                PushOutcome::Full => {}
            }
        }
        let slot = inner.dispatch.slots.slot(id.index());
        if slot.status() == TthreadStatus::Running {
            // Coalescing off with several workers: a duplicate entry of a
            // tthread another worker is mid-executing. Fold it into that
            // execution's rerun instead of running the body concurrently.
            // Counted as a stale entry (its trigger was already counted at
            // enqueue) so trigger conservation stays exact.
            slot.set_rf_if_running();
            state.stats.queue_stale_skips += 1;
            continue;
        }
        slot.claim();
        let func = inner.tthread_fn(id);
        if inner.cfg.detached_execution {
            state = run_detached(inner, Some(state), id, &func)
                .expect("locked-mode run_detached keeps the guard");
        } else {
            run_attached(inner, &mut state, id, &func);
        }
        inner.done_cv.notify_all();
    }
}

/// The lock-free worker: pops (id, token) pairs from its *own* shards of
/// the sharded pending queue, falls back to stealing a batch from the
/// fullest foreign shard ([`Config::work_stealing`]), claims via the
/// status-word CAS, and only touches the state lock to commit. Idles on
/// the dispatch eventcount with a timed park.
fn worker_loop_lockfree<U: Send + 'static>(inner: &Arc<Inner<U>>, worker_idx: usize) {
    let dispatch = &inner.dispatch;
    let workers = inner.cfg.workers.max(1);
    let stealing = inner.cfg.work_stealing;
    loop {
        if inner.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let popped = dispatch.pending.pop_local(worker_idx, workers).or_else(|| {
            if !stealing {
                return None;
            }
            // Injected steal suppression: skip this steal attempt so the
            // imbalance persists; the timed park below keeps the stolen-
            // from work live regardless.
            if inner.fault.fire(FaultPoint::StealBatch) {
                return None;
            }
            // Own shards dry: migrate half the fullest foreign shard here
            // and run its head entry right away. Cross-shard moves cannot
            // reorder a tthread's executions — FIFO-per-tthread rests on
            // the ABA tokens, not on queue position.
            dispatch
                .pending
                .steal_into(worker_idx, workers)
                .map(|(entry, moved)| {
                    dispatch.counters.stole(worker_idx, moved as u64);
                    entry
                })
        });
        let Some((raw, token)) = popped else {
            // The timed park doubles as the rescue path for a dropped
            // wake (see `FaultPoint::WakeDrop`) or a suppressed steal:
            // even a lost notification only costs one park period. With
            // stealing off, park only until *owned* work arrives —
            // foreign work is not poppable here, and waking for it would
            // busy-spin this worker.
            let outcome = if stealing {
                dispatch.waiters.park(
                    || !dispatch.pending.is_empty() || inner.shutdown.load(Ordering::SeqCst),
                    inner.cfg.park_timeout,
                )
            } else {
                dispatch.waiters.park(
                    || {
                        dispatch.pending.local_occupancy(worker_idx, workers) > 0
                            || inner.shutdown.load(Ordering::SeqCst)
                    },
                    inner.cfg.park_timeout,
                )
            };
            match outcome {
                ParkOutcome::Skipped => {}
                ParkOutcome::Woken => dispatch.counters.worker_park(worker_idx),
                ParkOutcome::TimedOut => {
                    dispatch.counters.worker_park(worker_idx);
                    dispatch.counters.park_timeout(worker_idx);
                }
            }
            continue;
        };
        let id = TthreadId::new(raw);
        if inner.fault.fire(FaultPoint::Dequeue) {
            // Injected dequeue rejection, handled explicitly: requeue and
            // retry if the queue takes it back, otherwise fall through and
            // run the entry ourselves — dropping it would strand the
            // tthread in Queued with no entry anywhere.
            if dispatch.pending.push(raw, token) == PendingPush::Pushed {
                continue;
            }
        }
        let slot = dispatch.slots.slot(id.index());
        if !slot.try_claim_queued(token) {
            // The entry went stale: a join or force claimed the tthread
            // (bumping the token) after this entry was queued.
            dispatch.counters.stale_skip(id.index());
            continue;
        }
        let func = inner.tthread_fn(id);
        if inner.cfg.detached_execution {
            let guard = run_detached(inner, None, id, &func);
            debug_assert!(guard.is_none());
        } else {
            let mut state = inner.state.lock();
            run_attached(inner, &mut state, id, &func);
        }
        inner.wake_joiners();
    }
}

/// Executes one claimed tthread *detached*: snapshot, body off the lock,
/// commit under the lock. The caller must already have moved `id` to
/// Running (claim CAS or `Slot::claim` under the lock).
///
/// `held` carries the state guard in locked dispatch mode, where the
/// caller's pop/claim happened under the lock; `None` means the lock-free
/// path, where the first snapshot is taken without the lock. In both
/// modes reruns re-enter the loop holding the commit's guard. Returns the
/// guard iff one was passed in, so the locked worker keeps its lock-held
/// loop shape.
fn run_detached<'a, U: Send + 'static>(
    inner: &'a Inner<U>,
    mut held: Option<MutexGuard<'a, State<U>>>,
    id: TthreadId,
    func: &TthreadFn<U>,
) -> Option<MutexGuard<'a, State<U>>> {
    let keep_guard = held.is_some();
    let slot = inner.dispatch.slots.slot(id.index());
    let mut retries: u32 = 0;
    loop {
        debug_assert_eq!(slot.status(), TthreadStatus::Running);
        // With the guard held the snapshot is serialized with raising.
        // Without it (lock-free first iteration) it is still no older than
        // the trigger that queued `id`: the claim CAS synchronized with
        // the raise RMW, which itself followed the triggering store's
        // stripe-locked publication — and `snapshot()` holds every stripe
        // lock, making the copy atomic against concurrent accessors.
        let snap = inner.mem.snapshot();
        drop(held.take());

        // Injected scheduling delay: the tthread is already Running (a join
        // waits for it rather than stealing it), so stretching this gap
        // widens trigger/join races without risking double execution.
        if inner.fault.fire(FaultPoint::WorkerSchedule) {
            inner.fault.delay();
        }

        let obs_on = inner.obs.on();
        let body_t0 = if obs_on {
            let ring = inner.obs.status_ring();
            inner.obs.record(ring, EventKind::BodyStart, Some(id), 0);
            inner.obs.now_ns()
        } else {
            0
        };
        let deadline = BodyDeadline::starting(inner.cfg.body_deadline, Instant::now());
        // The body runs entirely off the state lock, against the snapshot;
        // main-thread `with`/`join` calls proceed concurrently.
        let mut ctx = Ctx::detached(snap, inner, 1);
        let outcome = if inner.fault.fire(FaultPoint::BodyStart) {
            // Injected body failure: behave exactly like a panicking body
            // (the tthread gets poisoned below) without unwinding through
            // the panic hook and spamming stderr.
            Err(Box::new("injected body-start fault") as Box<dyn std::any::Any + Send>)
        } else {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| func(&mut ctx)))
        };
        // Deadline check covers the body only, before any injected commit
        // delay; a panic takes precedence over a timeout below. Monotonic
        // by construction — see `crate::deadline`.
        let overran = deadline.and_then(|d| d.overrun(Instant::now()));
        if obs_on {
            let ring = inner.obs.status_ring();
            let dur = inner.obs.now_ns().saturating_sub(body_t0);
            inner.obs.record(ring, EventKind::BodyEnd, Some(id), dur);
        }
        // Injected commit-replay delay: stretches the window between body
        // end and commit, multiplying commit conflicts and retriggers.
        // Runs before the relock unless the body already took the user-
        // state lock, in which case it stretches the critical section —
        // exactly the slow-commit behaviour worth chaos-testing.
        if inner.fault.fire(FaultPoint::CommitReplay) {
            inner.fault.delay();
        }
        let (guard, log, delta) = ctx.into_detached_parts();
        // If the body touched user state it already holds the lock; reuse
        // that guard so user-state updates and the commit are one critical
        // section. Every transition *out of* Running below happens under
        // this lock; locked-mode `done_cv` waiters therefore cannot miss
        // the wakeup, and lock-free joiners cannot either — their parks
        // validate the slot *word*, which every such transition bumps,
        // before committing to sleep (the wake itself is broadcast by the
        // worker loop after this function returns).
        let mut state = guard.unwrap_or_else(|| inner.state.lock());

        if outcome.is_err() {
            // Poison the tthread but keep this worker alive for the other
            // tthreads; the next join reports the failure. Nothing the body
            // stored is published — a detached execution is atomic.
            poison(&mut state, inner, id);
            return keep_guard.then_some(state);
        }

        if let Some(elapsed) = overran {
            // Deadline overrun: discard the write log — a timed-out body
            // never commits — and flag the tthread; the next join reports
            // `TthreadTimedOut`. The access-side counters still merge (the
            // loads/stores really happened, against the snapshot).
            inner.access.merge_delta(&delta);
            state.stats.body_timeouts += 1;
            state.tst.entry_mut(id).timed_out = true;
            state.graph.clear_depth(id);
            slot.force_clean();
            if inner.obs.on() {
                inner.obs.record(
                    inner.obs.status_ring(),
                    EventKind::BodyTimeout,
                    Some(id),
                    u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX),
                );
            }
            return keep_guard.then_some(state);
        }

        inner.access.merge_delta(&delta);
        let commit_t0 = if obs_on {
            let ring = inner.obs.status_ring();
            inner
                .obs
                .record(ring, EventKind::CommitBegin, Some(id), log.len() as u64);
            inner.obs.now_ns()
        } else {
            0
        };
        // Replay the write log against live memory. A panic can only come
        // out of a cascaded inline execution (which poisons its own
        // tthread); treat it like a body panic of `id` so the worker
        // survives, exactly as the attached executor did.
        let committed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            commit_log(&mut state, inner, id, &log)
        }));
        if obs_on {
            let ring = inner.obs.status_ring();
            let dur = inner.obs.now_ns().saturating_sub(commit_t0);
            inner.obs.record(ring, EventKind::CommitDone, Some(id), dur);
        }
        if committed.is_err() {
            poison(&mut state, inner, id);
            return keep_guard.then_some(state);
        }

        state.stats.executions += 1;
        state.stats.worker_executions += 1;
        state.stats.detached_executions += 1;
        state.tst.entry_mut(id).executions += 1;
        if inner.fault.fire(FaultPoint::Retrigger) {
            // Injected retrigger: pretend a trigger landed during the body,
            // driving the bounded retry loop below.
            slot.set_rf_if_running();
        }
        if slot.try_complete(Some(true)) {
            state.tst.entry_mut(id).epoch += 1;
            return keep_guard.then_some(state);
        }
        // The rerun flag was set: a trigger landed while the body ran (or
        // its own commit retriggered it). The snapshot may be stale, so go
        // around again with a fresh one — but only up to the configured
        // cap, so adversarial store rates cannot livelock this worker.
        if retries >= inner.cfg.commit_retry_cap {
            state.stats.commit_retry_exhausted += 1;
            slot.complete_to_triggered();
            if inner.obs.on() {
                inner.obs.record(
                    inner.obs.status_ring(),
                    EventKind::RetryExhausted,
                    Some(id),
                    u64::from(inner.cfg.commit_retry_cap),
                );
            }
            return keep_guard.then_some(state);
        }
        retries += 1;
        state.stats.commit_retries += 1;
        slot.absorb_rf();
        if let Some(base) = inner.cfg.commit_backoff {
            // Back off before re-snapshotting: under a store storm an
            // immediate rerun mostly re-loses the commit race. The sleep
            // happens off the state lock; jitter comes from the fault
            // layer's SplitMix64 stream so chaos replays stay
            // seed-deterministic. Detached executor only — the attached
            // baseline holds the caller's guard and cannot release it.
            state.stats.commit_backoff_waits += 1;
            drop(state);
            thread::sleep(backoff_delay(base, retries, inner.fault.draw()));
            held = Some(inner.state.lock());
        } else {
            held = Some(state);
        }
    }
}

/// Replays a detached execution's write log under the state lock, firing
/// triggers for the stores that still change live memory.
fn commit_log<U: Send + 'static>(
    state: &mut State<U>,
    inner: &Inner<U>,
    id: TthreadId,
    log: &[LoggedStore],
) {
    let detect = inner.cfg.suppress_silent_stores;
    // One commit = one wave epoch: downstream tthreads are raised at most
    // once per replay no matter how many stores land in their regions.
    state.graph.begin_wave();
    let mut dispatched: u64 = 0;
    let mut changed: u64 = 0;
    for entry in log {
        let effect = inner
            .mem
            .store_bytes(entry.range, &entry.data, detect && entry.dispatch);
        if !entry.dispatch {
            continue;
        }
        state.stats.commit_stores += 1;
        dispatched += 1;
        if effect.changed {
            changed += 1;
            if inner.obs.on() {
                inner.obs.record(
                    inner.mem.shard_of(entry.range.start()),
                    EventKind::ChangeDetected,
                    Some(id),
                    entry.range.start().raw(),
                );
            }
            // Depth 1 with `cur = id`: triggers raised here onto other
            // tthreads are cascade wave units, same as stores made directly
            // by an attached body.
            let mut ctx = Ctx::new_for(state, inner, 1, Some(id));
            ctx.dispatch(entry.range);
        } else {
            state.stats.commit_conflicts += 1;
            if inner.obs.on() {
                inner.obs.record(
                    inner.obs.status_ring(),
                    EventKind::CommitConflict,
                    Some(id),
                    entry.range.start().raw(),
                );
            }
            if !inner.cfg.early_cutoff {
                // Invalidate-on-write ablation: silent replayed lines still
                // propagate the wave downstream; the raise on the committing
                // tthread itself stays silence-gated.
                let mut ctx = Ctx::new_for(state, inner, 1, Some(id));
                ctx.skip_self_raise = true;
                ctx.dispatch(entry.range);
            }
        }
    }
    // Early cutoff: a cascade-raised recomputation whose entire commit was
    // silent stops the wave here — the transitive skip. Counted as a
    // terminal wave unit so `cascades == enqueues + coalesced + cutoffs`.
    let wave = state.graph.wave_depth(id);
    if wave > 0 {
        if inner.cfg.early_cutoff && dispatched > 0 && changed == 0 {
            state.stats.cascades += 1;
            state.stats.cascade_cutoffs += 1;
            if inner.obs.on() {
                inner.obs.record(
                    inner.obs.status_ring(),
                    EventKind::CascadeCutoff,
                    Some(id),
                    u64::from(wave),
                );
            }
        }
        state.graph.clear_depth(id);
    }
}

/// The legacy attached executor: runs the body under the state lock
/// (`Config::detached_execution = false`), kept as an ablation baseline.
/// The caller must already have moved `id` to Running.
fn run_attached<U: Send + 'static>(
    inner: &Inner<U>,
    state: &mut State<U>,
    id: TthreadId,
    func: &TthreadFn<U>,
) {
    let slot = inner.dispatch.slots.slot(id.index());
    let mut retries: u32 = 0;
    loop {
        debug_assert_eq!(slot.status(), TthreadStatus::Running);
        let obs_on = inner.obs.on();
        let body_t0 = if obs_on {
            let ring = inner.obs.status_ring();
            inner.obs.record(ring, EventKind::BodyStart, Some(id), 0);
            inner.obs.now_ns()
        } else {
            0
        };
        let (outcome, dispatched, changed) = if inner.fault.fire(FaultPoint::BodyStart) {
            (
                Err(Box::new("injected body-start fault") as Box<dyn std::any::Any + Send>),
                0,
                0,
            )
        } else {
            // One body execution = one wave epoch (see `commit_log`).
            state.graph.begin_wave();
            let mut ctx = Ctx::new_for(state, inner, 1, Some(id));
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| func(&mut ctx)));
            (outcome, ctx.body_dispatched, ctx.body_changed)
        };
        if obs_on {
            let ring = inner.obs.status_ring();
            let dur = inner.obs.now_ns().saturating_sub(body_t0);
            inner.obs.record(ring, EventKind::BodyEnd, Some(id), dur);
        }
        if outcome.is_err() {
            poison(state, inner, id);
            break;
        }
        state.stats.executions += 1;
        state.stats.worker_executions += 1;
        state.tst.entry_mut(id).executions += 1;
        // Early cutoff: a cascade-raised body whose tracked stores were all
        // silent stops the wave here (see `commit_log` for the detached
        // equivalent).
        let wave = state.graph.wave_depth(id);
        if wave > 0 {
            if inner.cfg.early_cutoff && dispatched > 0 && changed == 0 {
                state.stats.cascades += 1;
                state.stats.cascade_cutoffs += 1;
                if inner.obs.on() {
                    inner.obs.record(
                        inner.obs.status_ring(),
                        EventKind::CascadeCutoff,
                        Some(id),
                        u64::from(wave),
                    );
                }
            }
            state.graph.clear_depth(id);
        }
        if inner.fault.fire(FaultPoint::Retrigger) {
            slot.set_rf_if_running();
        }
        if slot.try_complete(Some(true)) {
            state.tst.entry_mut(id).epoch += 1;
            break;
        }
        // Same bounded go-around as the detached executor.
        if retries >= inner.cfg.commit_retry_cap {
            state.stats.commit_retry_exhausted += 1;
            slot.complete_to_triggered();
            if inner.obs.on() {
                inner.obs.record(
                    inner.obs.status_ring(),
                    EventKind::RetryExhausted,
                    Some(id),
                    u64::from(inner.cfg.commit_retry_cap),
                );
            }
            break;
        }
        retries += 1;
        state.stats.commit_retries += 1;
        slot.absorb_rf();
    }
}

/// Marks `id` poisoned after a panicking execution, leaving the runtime
/// usable for every other tthread.
fn poison<U>(state: &mut State<U>, inner: &Inner<U>, id: TthreadId) {
    state.tst.entry_mut(id).poisoned = true;
    state.graph.clear_depth(id);
    inner.dispatch.slots.slot(id.index()).force_clean();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Granularity;

    fn deferred() -> Config {
        Config::default()
    }

    #[test]
    fn skip_when_nothing_changes() {
        let mut rt = Runtime::new(deferred(), 0u64);
        let x = rt.alloc(1u32).unwrap();
        let tt = rt.register("noop", move |ctx| {
            let v = ctx.get(x);
            *ctx.user_mut() += v as u64;
        });
        rt.watch(tt, x.range()).unwrap();
        assert_eq!(rt.join(tt).unwrap(), JoinOutcome::Skipped);
        assert_eq!(rt.join(tt).unwrap(), JoinOutcome::Skipped);
        assert_eq!(rt.stats().counters().skips, 2);
        assert_eq!(rt.stats().counters().executions, 0);
    }

    #[test]
    fn trigger_then_join_runs_once() {
        let mut rt = Runtime::new(deferred(), Vec::<u32>::new());
        let x = rt.alloc(0u32).unwrap();
        let tt = rt.register("log", move |ctx| {
            let v = ctx.get(x);
            ctx.user_mut().push(v);
        });
        rt.watch(tt, x.range()).unwrap();
        rt.write(x, 5);
        rt.write(x, 6); // coalesces with the pending trigger
        assert_eq!(rt.join(tt).unwrap(), JoinOutcome::RanInline);
        assert_eq!(rt.join(tt).unwrap(), JoinOutcome::Skipped);
        let (_, log) = rt.into_state();
        assert_eq!(log, vec![6]);
    }

    #[test]
    fn silent_store_does_not_trigger() {
        let mut rt = Runtime::new(deferred(), ());
        let x = rt.alloc(7u32).unwrap();
        let tt = rt.register("t", |_| {});
        rt.watch(tt, x.range()).unwrap();
        rt.write(x, 7);
        assert_eq!(rt.status(tt).unwrap(), TthreadStatus::Clean);
        assert_eq!(rt.stats().counters().silent_stores, 1);
        rt.write(x, 8);
        assert_eq!(rt.status(tt).unwrap(), TthreadStatus::Triggered);
    }

    #[test]
    fn disabled_suppression_triggers_on_silent_store() {
        let cfg = deferred().with_silent_store_suppression(false);
        let mut rt = Runtime::new(cfg, ());
        let x = rt.alloc(7u32).unwrap();
        let tt = rt.register("t", |_| {});
        rt.watch(tt, x.range()).unwrap();
        rt.write(x, 7);
        assert_eq!(rt.status(tt).unwrap(), TthreadStatus::Triggered);
        assert_eq!(rt.stats().counters().silent_stores, 0);
    }

    #[test]
    fn unwatched_store_never_triggers() {
        let mut rt = Runtime::new(deferred(), ());
        let x = rt.alloc(0u32).unwrap();
        let y = rt.alloc(0u32).unwrap();
        let tt = rt.register("t", |_| {});
        rt.watch(tt, x.range()).unwrap();
        rt.write(y, 99);
        assert_eq!(rt.status(tt).unwrap(), TthreadStatus::Clean);
    }

    #[test]
    fn line_granularity_false_trigger_counted() {
        let cfg = deferred().with_granularity(Granularity::Line);
        let mut rt = Runtime::new(cfg, ());
        // Two u32 cells land in the same 64-byte line.
        let a = rt.alloc(0u32).unwrap();
        let b = rt.alloc(0u32).unwrap();
        let tt = rt.register("t", |_| {});
        rt.watch(tt, a.range()).unwrap();
        rt.write(b, 1);
        assert_eq!(rt.status(tt).unwrap(), TthreadStatus::Triggered);
        assert_eq!(rt.stats().counters().false_triggers, 1);
    }

    #[test]
    fn mark_dirty_and_force() {
        let mut rt = Runtime::new(deferred(), 0u32);
        let tt = rt.register("inc", |ctx| *ctx.user_mut() += 1);
        rt.mark_dirty(tt).unwrap();
        assert_eq!(rt.join(tt).unwrap(), JoinOutcome::RanInline);
        rt.force(tt).unwrap();
        assert_eq!(rt.with(|ctx| *ctx.user()), 2);
    }

    #[test]
    fn cascading_triggers() {
        let mut rt = Runtime::new(deferred(), ());
        let a = rt.alloc(0u32).unwrap();
        let b = rt.alloc(0u32).unwrap();
        let t2 = rt.register("second", move |ctx| {
            let v = ctx.get(b);
            ctx.set(b, v); // silent here; just to exercise the path
        });
        rt.watch(t2, b.range()).unwrap();
        let t1 = rt.register("first", move |ctx| {
            let v = ctx.get(a);
            ctx.set(b, v * 2);
        });
        rt.watch(t1, a.range()).unwrap();
        rt.write(a, 21);
        rt.join(t1).unwrap();
        // t1 wrote b=42, which triggers t2.
        assert_eq!(rt.status(t2).unwrap(), TthreadStatus::Triggered);
        assert_eq!(rt.join(t2).unwrap(), JoinOutcome::RanInline);
        assert_eq!(rt.stats().counters().cascade_triggers, 1);
        assert_eq!(rt.read(b), 42);
    }

    #[test]
    fn init_writes_do_not_trigger_or_count() {
        let mut rt = Runtime::new(deferred(), ());
        let x = rt.alloc(0u32).unwrap();
        let xs = rt.alloc_array::<u32>(4).unwrap();
        let tt = rt.register("t", |_| {});
        rt.watch(tt, x.range()).unwrap();
        rt.watch(tt, xs.range()).unwrap();
        rt.with(|ctx| {
            ctx.init(x, 99);
            ctx.init_at(xs, 2, 7);
        });
        assert_eq!(rt.status(tt).unwrap(), TthreadStatus::Clean);
        assert_eq!(rt.stats().counters().tracked_stores, 0);
        assert_eq!(rt.read(x), 99);
        assert_eq!(rt.read(xs.at(2)), 7);
        // A matrix allocation shares the same arena.
        let m = rt.alloc_matrix::<u64>(2, 3).unwrap();
        rt.with(|ctx| ctx.set(m.at(1, 2), 5));
        assert_eq!(rt.read(m.at(1, 2)), 5);
        assert_eq!(rt.config().granularity, crate::addr::Granularity::Exact);
    }

    #[test]
    fn read_all_matches_written_values() {
        let mut rt = Runtime::new(deferred(), ());
        let xs = rt.alloc_array_from(&[3u64, 1, 4, 1, 5]).unwrap();
        let values = rt.with(|ctx| ctx.read_all(xs));
        assert_eq!(values, vec![3, 1, 4, 1, 5]);
    }

    #[test]
    fn unwatch_detaches_trigger_region() {
        let mut rt = Runtime::new(deferred(), ());
        let xs = rt.alloc_array::<u32>(4).unwrap();
        let tt = rt.register("t", |_| {});
        rt.watch(tt, xs.range_of(0, 2)).unwrap();
        rt.watch(tt, xs.range_of(2, 4)).unwrap();
        rt.unwatch(tt, xs.range_of(0, 2)).unwrap();
        rt.with(|ctx| ctx.write(xs, 0, 9));
        assert_eq!(rt.status(tt).unwrap(), TthreadStatus::Clean);
        rt.with(|ctx| ctx.write(xs, 3, 9));
        assert_eq!(rt.status(tt).unwrap(), TthreadStatus::Triggered);
        // Unwatching the same region twice fails.
        assert!(matches!(
            rt.unwatch(tt, xs.range_of(0, 2)),
            Err(Error::NoSuchWatch(_))
        ));
    }

    #[test]
    fn foreign_id_is_rejected() {
        let mut rt = Runtime::new(deferred(), ());
        let bogus = TthreadId::new(42);
        assert!(matches!(rt.join(bogus), Err(Error::UnknownTthread(_))));
        assert!(matches!(rt.status(bogus), Err(Error::UnknownTthread(_))));
        assert!(matches!(rt.force(bogus), Err(Error::UnknownTthread(_))));
        assert!(matches!(
            rt.mark_dirty(bogus),
            Err(Error::UnknownTthread(_))
        ));
        assert!(matches!(
            rt.tthread_name(bogus),
            Err(Error::UnknownTthread(_))
        ));
    }

    #[test]
    fn watch_out_of_bounds_is_rejected() {
        let mut rt = Runtime::new(deferred(), ());
        let tt = rt.register("t", |_| {});
        let bad = AddrRange::new(crate::addr::Addr::new(1 << 20), 8);
        assert!(matches!(
            rt.watch(tt, bad),
            Err(Error::RegionOutOfBounds { .. })
        ));
    }

    #[test]
    fn join_all_covers_every_tthread() {
        let mut rt = Runtime::new(deferred(), 0u32);
        let x = rt.alloc(0u32).unwrap();
        let t1 = rt.register("a", |ctx| *ctx.user_mut() += 1);
        let t2 = rt.register("b", |ctx| *ctx.user_mut() += 10);
        rt.watch(t1, x.range()).unwrap();
        rt.watch(t2, x.range()).unwrap();
        rt.write(x, 3);
        let outcomes = rt.join_all().unwrap();
        assert_eq!(outcomes.len(), 2);
        assert!(outcomes.iter().all(|(_, o)| *o == JoinOutcome::RanInline));
        assert_eq!(rt.with(|ctx| *ctx.user()), 11);
        assert_eq!(rt.tthread_count(), 2);
        assert_eq!(rt.tthread_name(t1).unwrap(), "a");
    }

    #[test]
    fn parallel_executor_runs_on_worker() {
        let cfg = deferred().with_workers(2);
        let mut rt = Runtime::new(cfg, 0u64);
        let x = rt.alloc(0u64).unwrap();
        let tt = rt.register("double", move |ctx| {
            let v = ctx.get(x);
            *ctx.user_mut() = v * 2;
        });
        rt.watch(tt, x.range()).unwrap();
        rt.write(x, 50);
        // Whatever the interleaving, after join the result is published.
        let outcome = rt.join(tt).unwrap();
        assert!(matches!(
            outcome,
            JoinOutcome::Overlapped | JoinOutcome::Stolen | JoinOutcome::Waited
        ));
        assert_eq!(rt.with(|ctx| *ctx.user()), 100);
        let stats = rt.stats();
        assert_eq!(stats.counters().executions, 1);
    }

    #[test]
    fn parallel_executor_many_triggers_converge() {
        let cfg = deferred().with_workers(4).with_queue_capacity(4);
        let mut rt = Runtime::new(cfg, 0u64);
        let xs = rt.alloc_array::<u64>(16).unwrap();
        let tt = rt.register("sum", move |ctx| {
            let total: u64 = (0..xs.len()).map(|i| ctx.read(xs, i)).sum();
            *ctx.user_mut() = total;
        });
        rt.watch(tt, xs.range()).unwrap();
        for round in 1..=10u64 {
            for i in 0..16 {
                rt.with(|ctx| ctx.write(xs, i, round));
            }
            rt.join(tt).unwrap();
            assert_eq!(rt.with(|ctx| *ctx.user()), 16 * round);
        }
        let (_, user) = rt.into_state();
        assert_eq!(user, 160);
    }

    #[test]
    fn overflow_execute_inline_keeps_correctness() {
        let cfg = deferred()
            .with_workers(1)
            .with_queue_capacity(1)
            .with_coalescing(false);
        let mut rt = Runtime::new(cfg, 0u64);
        let x = rt.alloc(0u64).unwrap();
        let tt = rt.register("copy", move |ctx| {
            let v = ctx.get(x);
            *ctx.user_mut() = v;
        });
        rt.watch(tt, x.range()).unwrap();
        for i in 1..=100u64 {
            rt.write(x, i);
        }
        rt.join(tt).unwrap();
        assert_eq!(rt.with(|ctx| *ctx.user()), 100);
    }

    #[test]
    fn into_state_returns_heap_and_user() {
        let mut rt = Runtime::new(deferred(), String::from("hello"));
        let x = rt.alloc(9u8).unwrap();
        let (heap, user) = rt.into_state();
        assert_eq!(heap.load::<u8>(x.addr()), 9);
        assert_eq!(user, "hello");
    }

    #[test]
    fn reset_stats_zeroes_counters() {
        let mut rt = Runtime::new(deferred(), ());
        let x = rt.alloc(0u32).unwrap();
        rt.write(x, 1);
        assert!(rt.stats().counters().tracked_stores > 0);
        rt.reset_stats();
        assert_eq!(rt.stats().counters().tracked_stores, 0);
    }

    #[test]
    fn panicking_tthread_poisons_but_runtime_survives() {
        let mut rt = Runtime::new(deferred(), 0u32);
        let x = rt.alloc(0u32).unwrap();
        let bad = rt.register("bad", |_| panic!("tthread bug"));
        let good = rt.register("good", |ctx| *ctx.user_mut() += 1);
        rt.watch(bad, x.range()).unwrap();
        rt.watch(good, x.range()).unwrap();
        rt.write(x, 1);
        // The inline execution re-raises the panic...
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = rt.join(bad);
        }));
        assert!(caught.is_err());
        // ...but the runtime is not wedged: the bad tthread is poisoned,
        // the good one still works.
        assert!(matches!(rt.join(bad), Err(Error::TthreadPoisoned(_))));
        assert!(matches!(rt.force(bad), Err(Error::TthreadPoisoned(_))));
        assert_eq!(rt.join(good).unwrap(), JoinOutcome::RanInline);
        assert_eq!(rt.with(|ctx| *ctx.user()), 1);
        // Clearing the poison restores the tthread.
        rt.clear_poison(bad).unwrap();
        assert_eq!(rt.join(bad).unwrap(), JoinOutcome::Skipped);
    }

    #[test]
    fn worker_survives_panicking_tthread() {
        let cfg = deferred().with_workers(1);
        let mut rt = Runtime::new(cfg, 0u32);
        let x = rt.alloc(0u32).unwrap();
        let y = rt.alloc(0u32).unwrap();
        let bad = rt.register("bad", |_| panic!("tthread bug"));
        let good = rt.register("good", |ctx| *ctx.user_mut() += 1);
        rt.watch(bad, x.range()).unwrap();
        rt.watch(good, y.range()).unwrap();
        rt.write(x, 1);
        // Whether the worker ran it (poison) or the join stole it (panic
        // propagates), the runtime must stay usable.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| rt.join(bad)));
        assert!(matches!(rt.join(bad), Err(Error::TthreadPoisoned(_))));
        // The single worker must still be alive to run the good tthread.
        rt.write(y, 5);
        rt.join(good).unwrap();
        assert_eq!(rt.with(|ctx| *ctx.user()), 1);
    }

    #[test]
    fn bulk_read_matches_element_reads() {
        let mut rt = Runtime::new(deferred(), ());
        let xs = rt.alloc_array_from(&[1u32, 2, 3, 4, 5]).unwrap();
        rt.with(|ctx| {
            let mut out = Vec::new();
            ctx.read_all_into(xs, &mut out);
            assert_eq!(out, vec![1, 2, 3, 4, 5]);
            ctx.read_slice_into(xs, 1, 4, &mut out);
            assert_eq!(out, vec![2, 3, 4]);
            ctx.read_slice_into(xs, 2, 2, &mut out);
            assert!(out.is_empty());
        });
        assert_eq!(rt.stats().counters().tracked_loads, 8);
    }

    #[test]
    fn bulk_write_detects_silence_per_element() {
        let mut rt = Runtime::new(deferred(), ());
        let xs = rt.alloc_array_from(&[1u32, 2, 3, 4]).unwrap();
        let tt = rt.register("t", |_| {});
        rt.watch(tt, xs.range_of(0, 2)).unwrap();
        // Only elements 2 and 3 change; both are outside the watch.
        rt.with(|ctx| ctx.write_slice(xs, 0, &[1u32, 2, 9, 9]));
        assert_eq!(rt.status(tt).unwrap(), TthreadStatus::Clean);
        let c = rt.stats().counters().clone();
        assert_eq!(c.tracked_stores, 4);
        assert_eq!(c.silent_stores, 2);
        assert_eq!(c.changing_stores, 2);
        // Now change a watched element.
        rt.with(|ctx| ctx.write_slice(xs, 0, &[7u32, 2, 9, 9]));
        assert_eq!(rt.status(tt).unwrap(), TthreadStatus::Triggered);
        assert_eq!(rt.read(xs.at(0)), 7);
        assert_eq!(rt.read(xs.at(2)), 9);
    }

    #[test]
    fn bulk_write_dirties_same_tthreads_as_element_writes() {
        let run = |bulk: bool| -> Vec<TthreadStatus> {
            let mut rt = Runtime::new(deferred(), ());
            let xs = rt.alloc_array::<u64>(16).unwrap();
            let tts: Vec<_> = (0..4)
                .map(|i| {
                    let tt = rt.register(&format!("t{i}"), |_| {});
                    rt.watch(tt, xs.range_of(4 * i, 4 * (i + 1))).unwrap();
                    tt
                })
                .collect();
            let mut values = vec![0u64; 16];
            values[5] = 1; // dirties t1
            values[11] = 2; // dirties t2
            rt.with(|ctx| {
                if bulk {
                    ctx.write_slice(xs, 0, &values);
                } else {
                    for (i, &v) in values.iter().enumerate() {
                        ctx.write(xs, i, v);
                    }
                }
            });
            tts.iter().map(|&t| rt.status(t).unwrap()).collect()
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn shutdown_under_load_errors_instead_of_panicking() {
        use std::sync::atomic::AtomicBool;
        let cfg = deferred().with_workers(1);
        let mut rt = Runtime::new(cfg, ());
        let x = rt.alloc(0u32).unwrap();
        let started = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&started);
        let tt = rt.register("slow", move |_| {
            flag.store(true, Ordering::SeqCst);
            thread::sleep(Duration::from_millis(200));
        });
        rt.watch(tt, x.range()).unwrap();
        rt.write(x, 1);
        // Wait until the worker is provably inside the body, then shut
        // down with a deadline it cannot meet.
        while !started.load(Ordering::SeqCst) {
            thread::sleep(Duration::from_millis(1));
        }
        match rt.shutdown(Duration::from_millis(1)) {
            Err(Error::WorkersStillActive { active }) => assert!(active >= 1),
            other => panic!("expected WorkersStillActive, got {other:?}"),
        }
    }

    #[test]
    fn shutdown_with_drained_workers_returns_state() {
        let cfg = deferred().with_workers(2);
        let mut rt = Runtime::new(cfg, 7u32);
        let x = rt.alloc(3u8).unwrap();
        let tt = rt.register("t", |ctx| *ctx.user_mut() += 1);
        rt.watch(tt, x.range()).unwrap();
        rt.write(x, 9);
        rt.join(tt).unwrap();
        let (heap, user) = rt.shutdown(Duration::from_secs(5)).unwrap();
        assert_eq!(heap.load::<u8>(x.addr()), 9);
        assert_eq!(user, 8);
    }

    #[test]
    fn body_deadline_discards_the_write_log() {
        use std::sync::atomic::AtomicBool;
        let cfg = deferred()
            .with_workers(1)
            .with_body_deadline(Duration::from_millis(5));
        let mut rt = Runtime::new(cfg, ());
        let x = rt.alloc(0u32).unwrap();
        let y = rt.alloc(0u32).unwrap();
        let started = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&started);
        let tt = rt.register("overrun", move |ctx| {
            flag.store(true, Ordering::SeqCst);
            thread::sleep(Duration::from_millis(50));
            ctx.set(y, 99);
        });
        rt.watch(tt, x.range()).unwrap();
        rt.write(x, 1);
        // Only the worker path enforces the deadline; make sure it (not a
        // stealing join) runs the body.
        while !started.load(Ordering::SeqCst) {
            thread::sleep(Duration::from_millis(1));
        }
        assert!(matches!(rt.join(tt), Err(Error::TthreadTimedOut(id)) if id == tt));
        // The overrunning execution never committed.
        assert_eq!(rt.read(y), 0);
        assert_eq!(rt.stats().counters().body_timeouts, 1);
        assert!(matches!(rt.force(tt), Err(Error::TthreadTimedOut(_))));
        // Recovery mirrors poisoning: clear the flag, then force rebuilds.
        rt.clear_timeout(tt).unwrap();
        rt.force(tt).unwrap();
        assert_eq!(rt.read(y), 99);
        let report = rt.report();
        assert_eq!(rt.stats().counters().body_timeouts, 1);
        assert!(report.timed_out().is_empty());
    }

    #[test]
    fn injected_retrigger_hits_the_retry_cap() {
        use crate::fault::{FaultPlan, ALWAYS};
        let plan = FaultPlan::new(7).with_rate(FaultPoint::Retrigger, ALWAYS);
        let cfg = deferred()
            .with_workers(1)
            .with_commit_retry_cap(4)
            .with_fault_plan(plan);
        let mut rt = Runtime::new(cfg, 0u64);
        let x = rt.alloc(0u64).unwrap();
        let tt = rt.register("copy", move |ctx| {
            let v = ctx.get(x);
            *ctx.user_mut() = v;
        });
        rt.watch(tt, x.range()).unwrap();
        rt.write(x, 5);
        // Either the worker ran the retry loop to exhaustion, or the join
        // stole the tthread before the worker got it; poll for the former.
        for _ in 0..2000 {
            if rt.stats().counters().commit_retry_exhausted >= 1 {
                break;
            }
            thread::sleep(Duration::from_millis(1));
        }
        let stats = rt.stats();
        assert_eq!(stats.counters().commit_retry_exhausted, 1);
        assert_eq!(stats.counters().commit_retries, 4);
        // The exhausted tthread was deferred, not wedged: join finishes it
        // inline (the inline path has no retrigger probe).
        rt.join(tt).unwrap();
        assert_eq!(rt.with(|ctx| *ctx.user()), 5);
        let fired = rt.fault_injections();
        assert!(fired[FaultPoint::Retrigger as usize] >= 5);
    }

    #[test]
    fn commit_backoff_waits_between_retries() {
        use crate::fault::{FaultPlan, ALWAYS};
        let plan = FaultPlan::new(7).with_rate(FaultPoint::Retrigger, ALWAYS);
        let cfg = deferred()
            .with_workers(1)
            .with_commit_retry_cap(4)
            .with_commit_backoff(Duration::from_micros(50))
            .with_fault_plan(plan);
        let mut rt = Runtime::new(cfg, 0u64);
        let x = rt.alloc(0u64).unwrap();
        let tt = rt.register("copy", move |ctx| {
            let v = ctx.get(x);
            *ctx.user_mut() = v;
        });
        rt.watch(tt, x.range()).unwrap();
        rt.write(x, 5);
        for _ in 0..2000 {
            if rt.stats().counters().commit_retry_exhausted >= 1 {
                break;
            }
            thread::sleep(Duration::from_millis(1));
        }
        let stats = rt.stats();
        assert_eq!(stats.counters().commit_retry_exhausted, 1);
        assert_eq!(stats.counters().commit_retries, 4);
        // Every retry waited: the backoff branch ran once per retry.
        assert_eq!(stats.counters().commit_backoff_waits, 4);
        // Backoff delays the rerun; it must not change the outcome.
        rt.join(tt).unwrap();
        assert_eq!(rt.with(|ctx| *ctx.user()), 5);
    }

    #[test]
    fn drain_is_idempotent_under_active_workers() {
        use std::sync::atomic::AtomicBool;
        let cfg = deferred().with_workers(2);
        let mut rt = Runtime::new(cfg, 0u64);
        let x = rt.alloc(0u64).unwrap();
        let started = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&started);
        let tt = rt.register("slow", move |ctx| {
            flag.store(true, Ordering::SeqCst);
            thread::sleep(Duration::from_millis(20));
            let v = ctx.get(x);
            *ctx.user_mut() = v;
        });
        rt.watch(tt, x.range()).unwrap();
        rt.write(x, 7);
        while !started.load(Ordering::SeqCst) {
            thread::sleep(Duration::from_millis(1));
        }
        // The first drain lands while a worker is mid-body: it waits the
        // body out (the commit still happens) rather than stranding it.
        rt.drain(Duration::from_secs(10)).unwrap();
        // A second drain — e.g. the drain path racing a signal handler —
        // finds no handles and returns Ok without re-signalling.
        rt.drain(Duration::from_secs(10)).unwrap();
        rt.join(tt).unwrap();
        assert_eq!(rt.with(|ctx| *ctx.user()), 7);
        // The runtime stays usable as a deferred executor after a drain.
        rt.write(x, 9);
        rt.join(tt).unwrap();
        assert_eq!(rt.with(|ctx| *ctx.user()), 9);
        // And the consuming shutdown still tears down cleanly after it.
        let (_heap, user) = rt.shutdown(Duration::from_secs(10)).unwrap();
        assert_eq!(user, 9);
    }

    #[test]
    fn injected_body_fault_poisons_without_unwinding() {
        use crate::fault::{FaultPlan, ALWAYS};
        let plan = FaultPlan::new(9)
            .with_rate(FaultPoint::BodyStart, ALWAYS)
            .with_budget(FaultPoint::BodyStart, 1);
        let cfg = deferred().with_workers(1).with_fault_plan(plan);
        let mut rt = Runtime::new(cfg, 0u32);
        let x = rt.alloc(0u32).unwrap();
        let tt = rt.register("t", |ctx| *ctx.user_mut() += 1);
        rt.watch(tt, x.range()).unwrap();
        rt.write(x, 1);
        // Wait for the worker to consume the injected failure.
        for _ in 0..2000 {
            if matches!(rt.status(tt), Ok(TthreadStatus::Clean)) {
                break;
            }
            thread::sleep(Duration::from_millis(1));
        }
        assert!(matches!(rt.join(tt), Err(Error::TthreadPoisoned(_))));
        assert_eq!(rt.fault_injections()[FaultPoint::BodyStart as usize], 1);
        // Budget of one: recovery works and the next run is clean.
        rt.clear_poison(tt).unwrap();
        rt.force(tt).unwrap();
        assert_eq!(rt.with(|ctx| *ctx.user()), 1);
    }

    #[test]
    fn tthread_counters_report_per_thread() {
        let mut rt = Runtime::new(deferred(), ());
        let x = rt.alloc(0u32).unwrap();
        let tt = rt.register("t", |_| {});
        rt.watch(tt, x.range()).unwrap();
        rt.write(x, 1);
        rt.join(tt).unwrap();
        rt.join(tt).unwrap();
        let counters = rt.tthread_counters();
        assert_eq!(counters.len(), 1);
        let (id, execs, skips, triggers) = counters[0];
        assert_eq!(id, tt);
        assert_eq!(execs, 1);
        assert_eq!(skips, 1);
        assert_eq!(triggers, 1);
    }

    /// The lock-free join proof: while the joiner waits for a Running
    /// body, it is asleep on the *completion eventcount* and the state
    /// lock is free — `try_lock` from another thread succeeds. The locked
    /// baseline instead sleeps inside `done_cv.wait` on the state mutex.
    #[test]
    fn join_parks_on_completions_without_the_state_lock() {
        use std::sync::atomic::AtomicBool;
        let cfg = deferred().with_workers(1).with_lockfree_dispatch(true);
        let mut rt = Runtime::new(cfg, ());
        let release = Arc::new(AtomicBool::new(false));
        let gate = Arc::clone(&release);
        let x = rt.alloc(0u32).unwrap();
        let tt = rt.register("gated", move |_| {
            while !gate.load(Ordering::SeqCst) {
                thread::sleep(Duration::from_micros(50));
            }
        });
        rt.watch(tt, x.range()).unwrap();
        rt.write(x, 1);
        // Wait until the worker is provably inside the body.
        let deadline = Instant::now() + Duration::from_secs(10);
        while rt.status(tt).unwrap() != TthreadStatus::Running {
            assert!(Instant::now() < deadline, "worker never claimed the unit");
            thread::sleep(Duration::from_micros(50));
        }
        let inner = Arc::clone(&rt.inner);
        let opener = Arc::clone(&release);
        thread::scope(|s| {
            s.spawn(move || {
                // Catch the joiner committed to sleep on `completions`
                // with the state lock simultaneously available. If the
                // join held the lock while blocked, this combination
                // could never be observed and the deadline would fire.
                let deadline = Instant::now() + Duration::from_secs(10);
                loop {
                    assert!(
                        Instant::now() < deadline,
                        "joiner never parked lock-free on the completion eventcount"
                    );
                    if inner.dispatch.completions.sleeping() > 0 {
                        if let Some(guard) = inner.state.try_lock() {
                            drop(guard);
                            break;
                        }
                    }
                    thread::sleep(Duration::from_micros(100));
                }
                opener.store(true, Ordering::SeqCst);
            });
            assert_eq!(rt.join(tt).unwrap(), JoinOutcome::Waited);
        });
    }

    /// The shutdown-latency regression test: an idle runtime (all workers
    /// parked in their timed wait) must tear down via the eventcount
    /// `close()` broadcast in a small fraction of the configured park
    /// timeout, not by riding out park periods.
    #[test]
    fn idle_runtime_shutdown_beats_the_park_timeout() {
        use crate::dispatch::PARK_TIMEOUT;
        let cfg = deferred().with_workers(4).with_lockfree_dispatch(true);
        let rt = Runtime::new(cfg, ());
        // Let every worker reach its parked steady state.
        let deadline = Instant::now() + Duration::from_secs(10);
        while rt.inner.dispatch.waiters.sleeping() < 4 {
            assert!(Instant::now() < deadline, "workers never parked");
            thread::sleep(Duration::from_millis(1));
        }
        let t0 = Instant::now();
        drop(rt.into_state());
        let elapsed = t0.elapsed();
        assert!(
            elapsed < PARK_TIMEOUT / 2,
            "idle shutdown took {elapsed:?}; it must beat the {PARK_TIMEOUT:?} park period"
        );
    }

    /// Work stealing end to end: tthread ids congruent mod the shard
    /// count share one pending-queue shard, so triggering only ids ≡ 0
    /// (mod 4) under 4 workers loads a single worker's shard — the other
    /// three can make progress only by stealing. Repeats rounds until a
    /// steal is observed (scheduling-dependent, but each round gives
    /// three idle workers a full batch to take).
    #[test]
    fn work_stealing_drains_an_imbalanced_shard() {
        let cfg = deferred().with_workers(4).with_lockfree_dispatch(true);
        assert!(cfg.work_stealing);
        let mut rt = Runtime::new(cfg, ());
        let xs = rt.alloc_array::<u32>(32).unwrap();
        for i in 0..32 {
            let tt = rt.register(&format!("t{i}"), |_| {
                thread::sleep(Duration::from_millis(1));
            });
            rt.watch(tt, xs.range_of(i, i + 1)).unwrap();
        }
        let deadline = Instant::now() + Duration::from_secs(30);
        let mut round = 0u32;
        while rt.stats().counters().steals == 0 {
            assert!(
                Instant::now() < deadline,
                "no steal observed after {round} imbalanced rounds"
            );
            round += 1;
            for i in (0..32).step_by(4) {
                rt.with(|ctx| ctx.write(xs, i, round));
            }
            rt.join_all().unwrap();
        }
        let c = rt.stats().counters().clone();
        assert!(c.steal_batches <= c.steals);
        assert!(c.steal_batches >= 1);
        // Every stolen entry was executed or skipped, never lost: once
        // the workers drain the stale leftovers of the join assists, the
        // reservation counter matches the shard contents at zero.
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let (len, physical) = rt.pending_queue_consistency();
            if (len, physical) == (0, 0) {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "pending queue never quiesced: len {len}, physical {physical}"
            );
            thread::yield_now();
        }
    }

    /// The no-stealing ablation: the same imbalanced load must still
    /// complete (affinity scheduling serializes it on the owning worker;
    /// join assists cover the rest) and must never count a steal.
    #[test]
    fn disabled_stealing_still_drains_but_never_steals() {
        let cfg = deferred()
            .with_workers(4)
            .with_lockfree_dispatch(true)
            .with_work_stealing(false);
        let mut rt = Runtime::new(cfg, ());
        let xs = rt.alloc_array::<u32>(32).unwrap();
        for i in 0..32 {
            let tt = rt.register(&format!("t{i}"), |_| {});
            rt.watch(tt, xs.range_of(i, i + 1)).unwrap();
        }
        for round in 1..=5u32 {
            for i in (0..32).step_by(4) {
                rt.with(|ctx| ctx.write(xs, i, round));
            }
            rt.join_all().unwrap();
        }
        let c = rt.stats().counters().clone();
        assert_eq!(c.steals, 0);
        assert_eq!(c.steal_batches, 0);
        // Conservation still holds with affinity-only dispatch.
        assert_eq!(
            c.triggers_fired,
            c.enqueues + c.coalesced_triggers + c.queue_overflows
        );
        // join_all assists leave stale entries behind for the owning
        // worker to pop-and-skip; wait for that drain, then the atomic
        // and physical lengths must agree at zero.
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let (len, physical) = rt.pending_queue_consistency();
            if (len, physical) == (0, 0) {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "pending queue never quiesced: len {len}, physical {physical}"
            );
            thread::yield_now();
        }
    }

    /// Regression for the wrapped mod-64 page filter: page 64 shared a
    /// filter bit with page 0, so a watch on page 0 forced every store to
    /// page 64 through the full trigger table. The hierarchical filter
    /// gives each page its own bit; the store must exit after exactly one
    /// page-level load (one `filter_checks` tick, zero `filter_page_hits`).
    #[test]
    fn store_sixty_four_pages_from_a_watch_misses_in_one_load() {
        let mut rt = Runtime::new(deferred(), ());
        let xs = rt.alloc_array::<u8>(65 * 4096).unwrap();
        let tt = rt.register("t", |_| {});
        rt.watch(tt, xs.range_of(0, 64)).unwrap();
        rt.reset_stats();

        // Locked (ctx) store path.
        rt.with(|ctx| ctx.set(xs.at(64 * 4096), 1u8));
        let c = rt.stats().counters().clone();
        assert_eq!(c.filter_checks, 1);
        assert_eq!(c.filter_page_hits, 0, "page 64 aliased page 0 pre-fix");
        assert_eq!(c.filter_line_hits, 0);

        // Lock-free accessor store path.
        rt.reset_stats();
        let mut acc = rt.accessor();
        acc.set(xs.at(64 * 4096), 2u8);
        drop(acc);
        let c = rt.stats().counters().clone();
        assert_eq!(c.filter_checks, 1);
        assert_eq!(c.filter_page_hits, 0);
        assert_eq!(rt.status(tt).unwrap(), TthreadStatus::Clean);
    }

    /// Two watches on pages 0 and 64 — the pair that collapsed onto one
    /// bit in the wrapped filter. Unwatching one must not strip filter
    /// coverage from the other, and must genuinely clear its own page.
    #[test]
    fn unwatch_of_mod64_twin_page_keeps_the_other_watched() {
        let mut rt = Runtime::new(deferred(), ());
        let xs = rt.alloc_array::<u8>(65 * 4096).unwrap();
        let t0 = rt.register("page0", |_| {});
        let t64 = rt.register("page64", |_| {});
        rt.watch(t0, xs.range_of(0, 64)).unwrap();
        rt.watch(t64, xs.range_of(64 * 4096, 64 * 4096 + 64))
            .unwrap();
        rt.unwatch(t64, xs.range_of(64 * 4096, 64 * 4096 + 64))
            .unwrap();

        // The survivor still triggers.
        rt.write(xs.at(0), 9u8);
        assert_eq!(rt.status(t0).unwrap(), TthreadStatus::Triggered);

        // The unwatched twin page is fully cleared: one-load exit again.
        rt.join(t0).unwrap();
        rt.reset_stats();
        rt.write(xs.at(64 * 4096), 9u8);
        let c = rt.stats().counters().clone();
        assert_eq!(c.filter_checks, 1);
        assert_eq!(c.filter_page_hits, 0, "stale bit survived the unwatch");
        assert_eq!(rt.status(t64).unwrap(), TthreadStatus::Clean);
    }

    /// Within a watched page the second filter level discriminates
    /// 64-byte lines: a store to a distant line on the same page loads
    /// the page word (hit) and the line word (miss), and never reaches
    /// the trigger table.
    #[test]
    fn same_page_distant_line_misses_at_line_level() {
        let mut rt = Runtime::new(deferred(), ());
        let xs = rt.alloc_array::<u8>(4096).unwrap();
        let tt = rt.register("t", |_| {});
        rt.watch(tt, xs.range_of(0, 64)).unwrap();
        rt.reset_stats();
        // Last line of the same page.
        rt.write(xs.at(4032), 1u8);
        let c = rt.stats().counters().clone();
        assert_eq!(c.filter_checks, 1);
        assert_eq!(c.filter_page_hits, 1);
        assert_eq!(c.filter_line_hits, 0);
        assert_eq!(rt.status(tt).unwrap(), TthreadStatus::Clean);
    }

    /// A tthread storing into another tthread's trigger region raises it
    /// as a *cascade* wave unit, and the wave conservation identity
    /// `cascades == cascade_enqueues + cascade_coalesced + cascade_cutoffs`
    /// holds at quiescence.
    #[test]
    fn tthread_to_tthread_raise_counts_as_cascade() {
        let mut rt = Runtime::new(deferred(), ());
        let a = rt.alloc(0u32).unwrap();
        let b = rt.alloc(0u32).unwrap();
        let c = rt.alloc(0u32).unwrap();
        let t1 = rt.register("t1", move |ctx| {
            let v = ctx.get(a);
            ctx.set(b, v + 1);
        });
        let t2 = rt.register("t2", move |ctx| {
            let v = ctx.get(b);
            ctx.set(c, v * 10);
        });
        rt.watch(t1, a.range()).unwrap();
        rt.watch(t2, b.range()).unwrap();
        rt.write(a, 4);
        assert_eq!(rt.join(t1).unwrap(), JoinOutcome::RanInline);
        assert_eq!(rt.join(t2).unwrap(), JoinOutcome::RanInline);
        assert_eq!(rt.with(|ctx| ctx.get(c)), 50);
        let s = rt.stats().counters().clone();
        assert_eq!(s.cascades, 1);
        assert_eq!(s.cascade_enqueues, 1);
        assert_eq!(s.cascade_cutoffs, 0);
        assert_eq!(
            s.cascades,
            s.cascade_enqueues + s.cascade_coalesced + s.cascade_cutoffs
        );
    }

    /// Early cutoff: a cascade-raised recomputation whose stores are all
    /// silent terminates the wave, is counted as a `cascade_cutoffs`
    /// terminal wave unit, and never raises the tthreads downstream of
    /// *it* — the transitive skip.
    #[test]
    fn fully_silent_cascade_commit_cuts_the_wave() {
        let mut rt = Runtime::new(deferred(), 0u64);
        let a = rt.alloc(1u32).unwrap();
        let b = rt.alloc(1u32).unwrap();
        let c = rt.alloc(1u32).unwrap();
        let t1 = rt.register("copy", move |ctx| {
            let v = ctx.get(a);
            ctx.set(b, v);
        });
        // Saturating: any b >= 1 produces the same c.
        let t2 = rt.register("clamp", move |ctx| {
            let v = ctx.get(b);
            ctx.set(c, v.min(1));
        });
        let t3 = rt.register("sink", move |ctx| {
            let v = ctx.get(c);
            *ctx.user_mut() += u64::from(v);
        });
        rt.watch(t1, a.range()).unwrap();
        rt.watch(t2, b.range()).unwrap();
        rt.watch(t3, c.range()).unwrap();
        // a: 1 -> 2 changes b (cascade to t2), but c stays 1: the wave
        // stops at t2 and t3 is never raised.
        rt.write(a, 2);
        assert_eq!(rt.join(t1).unwrap(), JoinOutcome::RanInline);
        assert_eq!(rt.join(t2).unwrap(), JoinOutcome::RanInline);
        assert_eq!(rt.join(t3).unwrap(), JoinOutcome::Skipped);
        let s = rt.stats().counters().clone();
        assert_eq!(s.cascades, 2, "one raise + one terminal cutoff");
        assert_eq!(s.cascade_enqueues, 1);
        assert_eq!(s.cascade_cutoffs, 1);
        assert_eq!(
            s.cascades,
            s.cascade_enqueues + s.cascade_coalesced + s.cascade_cutoffs
        );
        assert_eq!(s.executions, 2);
    }

    /// One commit raises each downstream tthread at most once: multiple
    /// stores of the same body landing in one reader's trigger regions
    /// dedupe per wave epoch, not per store.
    #[test]
    fn wave_raises_dedupe_per_body_epoch() {
        let mut rt = Runtime::new(deferred(), ());
        let a = rt.alloc(0u32).unwrap();
        let bs = rt.alloc_array::<u32>(2).unwrap();
        let t1 = rt.register("fan", move |ctx| {
            let v = ctx.get(a);
            // Two separate stores, both in t2's watch region.
            ctx.write(bs, 0, v);
            ctx.write(bs, 1, v + 1);
        });
        let t2 = rt.register("sum", move |ctx| {
            let _ = ctx.read(bs, 0) + ctx.read(bs, 1);
        });
        rt.watch(t1, a.range()).unwrap();
        rt.watch(t2, bs.range()).unwrap();
        rt.write(a, 3);
        rt.join(t1).unwrap();
        rt.join(t2).unwrap();
        let s = rt.stats().counters().clone();
        assert_eq!(s.cascades, 1, "second store into t2's region deduped");
        assert_eq!(s.wave_dedups, 1);
        assert_eq!(
            s.cascades,
            s.cascade_enqueues + s.cascade_coalesced + s.cascade_cutoffs
        );
    }

    /// The invalidate-on-write ablation (`early_cutoff = false`):
    /// silent stores by a tthread body still propagate the wave to
    /// *other* tthreads, while the writer's own retrigger loop stays
    /// silence-gated (no self-livelock).
    #[test]
    fn cutoff_off_propagates_silent_lines_downstream() {
        let run = |early_cutoff: bool| {
            let cfg = Config::default().with_early_cutoff(early_cutoff);
            let mut rt = Runtime::new(cfg, ());
            let a = rt.alloc(1u32).unwrap();
            let b = rt.alloc(1u32).unwrap();
            let t1 = rt.register("clamp", move |ctx| {
                let v = ctx.get(a);
                ctx.set(b, v.min(1));
            });
            let t2 = rt.register("sink", move |ctx| {
                let _ = ctx.get(b);
            });
            rt.watch(t1, a.range()).unwrap();
            rt.watch(t2, b.range()).unwrap();
            rt.write(a, 5); // b: 1 -> 1, silent
            rt.join(t1).unwrap();
            rt.join(t2).unwrap();
            rt.stats().counters().clone()
        };
        let on = run(true);
        assert_eq!(on.cascades, 0, "silent store fires nothing with cutoff on");
        let off = run(false);
        assert_eq!(off.cascades, 1, "ablation invalidates on write");
        assert_eq!(off.cascade_enqueues, 1);
        assert_eq!(
            off.cascades,
            off.cascade_enqueues + off.cascade_coalesced + off.cascade_cutoffs
        );
    }

    /// Declared outputs plus watches form the edge map, and an edge that
    /// would close a cross-tthread cycle is rejected at install time with
    /// `Error::TriggerCycle` naming the cycle path.
    #[test]
    fn watch_time_cycle_detection_names_the_path() {
        let mut rt = Runtime::new(deferred(), ());
        let a = rt.alloc(0u32).unwrap();
        let b = rt.alloc(0u32).unwrap();
        let c = rt.alloc(0u32).unwrap();
        let t0 = rt.register("t0", |_| {});
        let t1 = rt.register("t1", |_| {});
        let t2 = rt.register("t2", |_| {});
        rt.declare_output(t0, b.range()).unwrap();
        rt.declare_output(t1, c.range()).unwrap();
        rt.declare_output(t2, a.range()).unwrap();
        rt.watch(t0, a.range()).unwrap();
        rt.watch(t1, b.range()).unwrap();
        assert_eq!(rt.graph_edges().len(), 2);
        // t2 watching c closes t0 -> t1 -> t2 -> t0.
        let err = rt.watch(t2, c.range()).unwrap_err();
        match err {
            Error::TriggerCycle { path } => {
                assert_eq!(path.first(), path.last());
                assert_eq!(path.len(), 4);
            }
            other => panic!("expected TriggerCycle, got {other:?}"),
        }
        // The rejected watch was rolled back: the edge map is unchanged
        // and the tthread still fires nothing on stores to c.
        assert_eq!(rt.graph_edges().len(), 2);
        assert_eq!(rt.stats().counters().trigger_cycles_rejected, 1);
        rt.write(c, 7);
        assert_eq!(rt.status(t2).unwrap(), TthreadStatus::Clean);
    }

    /// A tthread watching its own declared output (the established
    /// self-retrigger pattern) is *not* a rejected cycle.
    #[test]
    fn self_loop_is_not_a_trigger_cycle() {
        let mut rt = Runtime::new(deferred(), ());
        let x = rt.alloc(0u32).unwrap();
        let t = rt.register("t", |_| {});
        rt.declare_output(t, x.range()).unwrap();
        rt.watch(t, x.range()).unwrap();
        assert!(rt.graph_edges().is_empty());
    }
}
