//! # dtt-trace — program traces for the DTT toolchain
//!
//! The lingua franca between the workload suite, the redundancy profiler
//! (`dtt-profile`) and the timing simulator (`dtt-sim`): an abstract dynamic
//! instruction stream ([`Event`]) annotated with the DTT program structure —
//! tthread *regions* and *join* points — plus a header declaring the watched
//! address ranges.
//!
//! Workload kernels are written once, generic over the [`Probe`]
//! instrumentation trait; run with [`NoProbe`] they are the native baseline,
//! run with a [`TraceBuilder`] they produce a validated [`Trace`].
//!
//! ```
//! use dtt_trace::{NoProbe, Probe, TraceBuilder};
//!
//! fn kernel<P: Probe>(p: &mut P, xs: &[u64]) -> u64 {
//!     let mut sum = 0;
//!     for (i, &x) in xs.iter().enumerate() {
//!         p.load(1, 0x1000 + 8 * i as u64, 8, x);
//!         p.compute(1);
//!         sum += x;
//!     }
//!     sum
//! }
//!
//! assert_eq!(kernel(&mut NoProbe, &[1, 2, 3]), 6); // baseline
//! let mut b = TraceBuilder::new();
//! kernel(&mut b, &[1, 2, 3]);
//! let trace = b.finish()?;
//! assert_eq!(trace.loads(), 3);
//! assert_eq!(trace.instructions(), 6);
//! # Ok::<(), dtt_trace::TraceError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod event;
pub mod io;
pub mod probe;

pub use builder::{Trace, TraceBuilder, TraceError};
pub use event::{Event, SiteId, TthreadIndex, Watch};
pub use io::{read_trace, write_trace, ReadError};
pub use probe::{NoProbe, Probe};
