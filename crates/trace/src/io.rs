//! Binary trace serialization.
//!
//! Traces are expensive to regenerate (a reference-scale workload emits
//! millions of events), so they can be written to disk and replayed into
//! the profiler or the timing simulator later. The format is a simple
//! little-endian stream — no external dependencies:
//!
//! ```text
//! magic   "DTTRACE1"                     8 bytes
//! u32     tthread count
//!   per tthread: u32 name length, UTF-8 bytes
//! u32     watch count
//!   per watch: u32 tthread, u64 start, u64 len
//! u64     event count
//!   per event: u8 tag, fields (see below)
//! ```
//!
//! Event encodings: `0` Compute(u64) · `1` Load(site u32, addr u64, size
//! u32, value u64) · `2` Store(same fields) · `3` RegionBegin(u32) ·
//! `4` RegionEnd(u32) · `5` Join(u32).

use std::fmt;
use std::io::{self, Read, Write};

use crate::builder::Trace;
use crate::event::{Event, Watch};

const MAGIC: &[u8; 8] = b"DTTRACE1";

/// Errors produced while decoding a trace stream.
#[derive(Debug)]
#[non_exhaustive]
pub enum ReadError {
    /// The underlying reader failed.
    Io(io::Error),
    /// The stream does not start with the `DTTRACE1` magic.
    BadMagic,
    /// A tthread name was not valid UTF-8.
    BadName,
    /// An unknown event tag was encountered.
    BadTag(u8),
    /// A watch or event referenced an undeclared tthread.
    BadTthread(u32),
    /// A declared length is implausibly large for the stream.
    LengthOverflow,
    /// The decoded events violate trace structure (unmatched regions, …).
    Structural(crate::TraceError),
}

impl fmt::Display for ReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadError::Io(e) => write!(f, "trace read failed: {e}"),
            ReadError::BadMagic => write!(f, "not a dtt trace (bad magic)"),
            ReadError::BadName => write!(f, "tthread name is not valid utf-8"),
            ReadError::BadTag(t) => write!(f, "unknown event tag {t}"),
            ReadError::BadTthread(t) => write!(f, "undeclared tthread index {t}"),
            ReadError::LengthOverflow => write!(f, "declared length exceeds sanity bound"),
            ReadError::Structural(e) => write!(f, "decoded trace is malformed: {e}"),
        }
    }
}

impl std::error::Error for ReadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReadError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> Self {
        ReadError::Io(e)
    }
}

/// Serializes `trace` to `writer`.
///
/// # Errors
///
/// Propagates I/O errors from the writer. A `&mut W` can be passed for any
/// `W: Write`.
pub fn write_trace<W: Write>(trace: &Trace, mut writer: W) -> io::Result<()> {
    writer.write_all(MAGIC)?;
    let names = trace.tthread_names();
    writer.write_all(&(names.len() as u32).to_le_bytes())?;
    for name in names {
        writer.write_all(&(name.len() as u32).to_le_bytes())?;
        writer.write_all(name.as_bytes())?;
    }
    let watches = trace.watches();
    writer.write_all(&(watches.len() as u32).to_le_bytes())?;
    for w in watches {
        writer.write_all(&w.tthread.to_le_bytes())?;
        writer.write_all(&w.start.to_le_bytes())?;
        writer.write_all(&w.len.to_le_bytes())?;
    }
    let events = trace.events();
    writer.write_all(&(events.len() as u64).to_le_bytes())?;
    for e in events {
        match *e {
            Event::Compute(n) => {
                writer.write_all(&[0u8])?;
                writer.write_all(&n.to_le_bytes())?;
            }
            Event::Load {
                site,
                addr,
                size,
                value,
            } => {
                writer.write_all(&[1u8])?;
                write_mem(&mut writer, site, addr, size, value)?;
            }
            Event::Store {
                site,
                addr,
                size,
                value,
            } => {
                writer.write_all(&[2u8])?;
                write_mem(&mut writer, site, addr, size, value)?;
            }
            Event::RegionBegin { tthread } => {
                writer.write_all(&[3u8])?;
                writer.write_all(&tthread.to_le_bytes())?;
            }
            Event::RegionEnd { tthread } => {
                writer.write_all(&[4u8])?;
                writer.write_all(&tthread.to_le_bytes())?;
            }
            Event::Join { tthread } => {
                writer.write_all(&[5u8])?;
                writer.write_all(&tthread.to_le_bytes())?;
            }
        }
    }
    Ok(())
}

fn write_mem<W: Write>(w: &mut W, site: u32, addr: u64, size: u32, value: u64) -> io::Result<()> {
    w.write_all(&site.to_le_bytes())?;
    w.write_all(&addr.to_le_bytes())?;
    w.write_all(&size.to_le_bytes())?;
    w.write_all(&value.to_le_bytes())
}

/// Deserializes a trace from `reader`.
///
/// # Errors
///
/// Returns a [`ReadError`] on I/O failure or malformed input. Structural
/// validity (region nesting) is re-checked through [`crate::TraceBuilder`],
/// so a decoded trace upholds the same invariants as a built one.
pub fn read_trace<R: Read>(mut reader: R) -> Result<Trace, ReadError> {
    let mut magic = [0u8; 8];
    reader.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(ReadError::BadMagic);
    }
    let mut b = crate::TraceBuilder::new();
    let n_tthreads = read_u32(&mut reader)?;
    if n_tthreads > 1 << 24 {
        return Err(ReadError::LengthOverflow);
    }
    for _ in 0..n_tthreads {
        let len = read_u32(&mut reader)? as usize;
        if len > 1 << 16 {
            return Err(ReadError::LengthOverflow);
        }
        let mut buf = vec![0u8; len];
        reader.read_exact(&mut buf)?;
        let name = String::from_utf8(buf).map_err(|_| ReadError::BadName)?;
        b.declare_tthread(&name);
    }
    let n_watches = read_u32(&mut reader)?;
    if n_watches > 1 << 28 {
        return Err(ReadError::LengthOverflow);
    }
    for _ in 0..n_watches {
        let tthread = read_u32(&mut reader)?;
        if tthread >= n_tthreads {
            return Err(ReadError::BadTthread(tthread));
        }
        let start = read_u64(&mut reader)?;
        let len = read_u64(&mut reader)?;
        let _ = Watch {
            tthread,
            start,
            len,
        };
        b.declare_watch(tthread, start, len);
    }
    let n_events = read_u64(&mut reader)?;
    for _ in 0..n_events {
        let mut tag = [0u8; 1];
        reader.read_exact(&mut tag)?;
        match tag[0] {
            0 => b.compute_event(read_u64(&mut reader)?),
            1 | 2 => {
                let site = read_u32(&mut reader)?;
                let addr = read_u64(&mut reader)?;
                let size = read_u32(&mut reader)?;
                let value = read_u64(&mut reader)?;
                if tag[0] == 1 {
                    b.load_event(site, addr, size, value);
                } else {
                    b.store_event(site, addr, size, value);
                }
            }
            3..=5 => {
                let tthread = read_u32(&mut reader)?;
                if tthread >= n_tthreads {
                    return Err(ReadError::BadTthread(tthread));
                }
                match tag[0] {
                    3 => {
                        let _ = b.region_begin_checked(tthread);
                    }
                    4 => {
                        let _ = b.region_end_checked(tthread);
                    }
                    _ => b.join_event(tthread),
                }
            }
            t => return Err(ReadError::BadTag(t)),
        }
    }
    b.finish().map_err(ReadError::Structural)
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32, ReadError> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64, ReadError> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceBuilder;

    fn sample() -> Trace {
        let mut b = TraceBuilder::new();
        let t0 = b.declare_tthread("alpha");
        let t1 = b.declare_tthread("beta");
        b.declare_watch(t0, 0x100, 64);
        b.declare_watch(t1, 0x800, 8);
        b.compute_event(42);
        b.store_event(1, 0x100, 8, 7);
        b.region_begin_checked(t0).unwrap();
        b.load_event(2, 0x100, 8, 7);
        b.compute_event(100);
        b.region_end_checked(t0).unwrap();
        b.join_event(t0);
        b.join_event(t1);
        b.finish().unwrap()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let trace = sample();
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).unwrap();
        let back = read_trace(buf.as_slice()).unwrap();
        assert_eq!(back.tthread_names(), trace.tthread_names());
        assert_eq!(back.watches(), trace.watches());
        assert_eq!(back.events(), trace.events());
        assert_eq!(back.instructions(), trace.instructions());
    }

    #[test]
    fn bad_magic_rejected() {
        let err = read_trace(&b"NOTATRCE"[..]).unwrap_err();
        assert!(matches!(err, ReadError::BadMagic));
    }

    #[test]
    fn truncated_stream_rejected() {
        let trace = sample();
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(matches!(read_trace(buf.as_slice()), Err(ReadError::Io(_))));
    }

    #[test]
    fn unknown_tag_rejected() {
        let mut b = TraceBuilder::new();
        b.compute_event(1);
        let trace = b.finish().unwrap();
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).unwrap();
        // Append a bogus event by bumping the count and writing tag 9.
        let count_at = buf.len() - (1 + 8); // one compute event = 9 bytes
        let n = u64::from_le_bytes(buf[count_at - 8..count_at].try_into().unwrap());
        buf[count_at - 8..count_at].copy_from_slice(&(n + 1).to_le_bytes());
        buf.push(9);
        assert!(matches!(
            read_trace(buf.as_slice()),
            Err(ReadError::BadTag(9))
        ));
    }

    #[test]
    fn foreign_tthread_in_watch_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&1u32.to_le_bytes()); // 1 tthread
        buf.extend_from_slice(&1u32.to_le_bytes()); // name len 1
        buf.push(b'x');
        buf.extend_from_slice(&1u32.to_le_bytes()); // 1 watch
        buf.extend_from_slice(&7u32.to_le_bytes()); // undeclared tthread 7
        buf.extend_from_slice(&0u64.to_le_bytes());
        buf.extend_from_slice(&8u64.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes()); // 0 events
        assert!(matches!(
            read_trace(buf.as_slice()),
            Err(ReadError::BadTthread(7))
        ));
    }

    #[test]
    fn error_messages_are_informative() {
        for e in [
            ReadError::BadMagic,
            ReadError::BadName,
            ReadError::BadTag(3),
            ReadError::BadTthread(1),
            ReadError::LengthOverflow,
        ] {
            assert!(!e.to_string().is_empty());
        }
        let io_err = ReadError::from(io::Error::other("x"));
        assert!(std::error::Error::source(&io_err).is_some());
    }
}
