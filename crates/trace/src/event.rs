//! Trace events.
//!
//! A trace is the abstract dynamic instruction stream of one workload run,
//! annotated with the DTT structure the programmer would add: *regions*
//! (candidate tthread bodies, recorded at the place the baseline executes
//! them) and *join points* (where the main thread consumes region outputs).
//!
//! All addresses are logical; values are the raw little-endian bits of the
//! accessed location (floats via `to_bits`), which is what redundant-load
//! classification compares.

use std::fmt;

/// Index of a tthread declared in the trace header.
pub type TthreadIndex = u32;

/// Identifier of a static load/store site (think: program counter of the
/// instruction). `0` is conventionally "unattributed".
pub type SiteId = u32;

/// One dynamic event in the traced instruction stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// `n` non-memory instructions of straight-line work.
    Compute(u64),
    /// A load of `size` bytes at `addr` observing `value`.
    Load {
        /// Static site of the load.
        site: SiteId,
        /// Logical byte address.
        addr: u64,
        /// Access width in bytes (1–8).
        size: u32,
        /// The loaded value, zero-extended to 64 bits.
        value: u64,
    },
    /// A store of `size` bytes at `addr` writing `value`.
    Store {
        /// Static site of the store.
        site: SiteId,
        /// Logical byte address.
        addr: u64,
        /// Access width in bytes (1–8).
        size: u32,
        /// The stored value, zero-extended to 64 bits.
        value: u64,
    },
    /// Start of the computation attached to `tthread`, at the position the
    /// *baseline* executes it.
    RegionBegin {
        /// The tthread this region belongs to.
        tthread: TthreadIndex,
    },
    /// End of the current region.
    RegionEnd {
        /// The tthread this region belongs to.
        tthread: TthreadIndex,
    },
    /// The main thread consumes `tthread`'s outputs here.
    Join {
        /// The consumed tthread.
        tthread: TthreadIndex,
    },
}

impl Event {
    /// Dynamic instructions this event represents (memory ops count as one
    /// instruction each; markers count as zero).
    pub fn instructions(&self) -> u64 {
        match self {
            Event::Compute(n) => *n,
            Event::Load { .. } | Event::Store { .. } => 1,
            Event::RegionBegin { .. } | Event::RegionEnd { .. } | Event::Join { .. } => 0,
        }
    }

    /// Whether this is a memory access.
    pub fn is_memory(&self) -> bool {
        matches!(self, Event::Load { .. } | Event::Store { .. })
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::Compute(n) => write!(f, "compute {n}"),
            Event::Load {
                site,
                addr,
                size,
                value,
            } => {
                write!(f, "load@{site} [0x{addr:x}+{size}] = 0x{value:x}")
            }
            Event::Store {
                site,
                addr,
                size,
                value,
            } => {
                write!(f, "store@{site} [0x{addr:x}+{size}] := 0x{value:x}")
            }
            Event::RegionBegin { tthread } => write!(f, "region-begin tt{tthread}"),
            Event::RegionEnd { tthread } => write!(f, "region-end tt{tthread}"),
            Event::Join { tthread } => write!(f, "join tt{tthread}"),
        }
    }
}

/// A watched address range declared in the trace header: stores changing
/// bytes in it trigger the tthread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Watch {
    /// The triggered tthread.
    pub tthread: TthreadIndex,
    /// Start of the watched range.
    pub start: u64,
    /// Length of the watched range in bytes.
    pub len: u64,
}

impl Watch {
    /// Whether a store to `[addr, addr+size)` precisely overlaps this watch.
    pub fn overlaps(&self, addr: u64, size: u32) -> bool {
        self.len > 0 && size > 0 && addr < self.start + self.len && self.start < addr + size as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instruction_weights() {
        assert_eq!(Event::Compute(7).instructions(), 7);
        assert_eq!(
            Event::Load {
                site: 0,
                addr: 0,
                size: 8,
                value: 0
            }
            .instructions(),
            1
        );
        assert_eq!(
            Event::Store {
                site: 0,
                addr: 0,
                size: 8,
                value: 0
            }
            .instructions(),
            1
        );
        assert_eq!(Event::RegionBegin { tthread: 0 }.instructions(), 0);
        assert_eq!(Event::Join { tthread: 0 }.instructions(), 0);
    }

    #[test]
    fn memory_classification() {
        assert!(Event::Load {
            site: 0,
            addr: 0,
            size: 4,
            value: 0
        }
        .is_memory());
        assert!(Event::Store {
            site: 0,
            addr: 0,
            size: 4,
            value: 0
        }
        .is_memory());
        assert!(!Event::Compute(1).is_memory());
        assert!(!Event::RegionEnd { tthread: 0 }.is_memory());
    }

    #[test]
    fn watch_overlap() {
        let w = Watch {
            tthread: 0,
            start: 100,
            len: 8,
        };
        assert!(w.overlaps(100, 1));
        assert!(w.overlaps(107, 1));
        assert!(!w.overlaps(108, 1));
        assert!(w.overlaps(96, 8));
        assert!(!w.overlaps(92, 8));
        assert!(!w.overlaps(100, 0));
        let empty = Watch {
            tthread: 0,
            start: 100,
            len: 0,
        };
        assert!(!empty.overlaps(100, 4));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Event::Compute(3).to_string(), "compute 3");
        assert!(Event::Join { tthread: 2 }.to_string().contains("tt2"));
        assert!(Event::Store {
            site: 1,
            addr: 16,
            size: 4,
            value: 255
        }
        .to_string()
        .contains("0xff"));
    }
}
