//! The [`Probe`] instrumentation interface.
//!
//! Workload kernels are written once, generic over a `Probe`. Run with
//! [`NoProbe`] they execute at full native speed (every hook is an inlined
//! no-op) — that is the measurable baseline. Run with a
//! [`crate::builder::TraceBuilder`] they emit the event stream the profiler
//! and the timing simulator consume.

use crate::event::{SiteId, TthreadIndex};

/// Instrumentation hooks a traced kernel calls as it executes.
///
/// The default methods are no-ops, so a probe only overrides what it needs.
pub trait Probe {
    /// `n` non-memory instructions of work happened.
    fn compute(&mut self, n: u64) {
        let _ = n;
    }

    /// A load at static site `site` observed `value`.
    fn load(&mut self, site: SiteId, addr: u64, size: u32, value: u64) {
        let _ = (site, addr, size, value);
    }

    /// A store at static site `site` wrote `value`.
    fn store(&mut self, site: SiteId, addr: u64, size: u32, value: u64) {
        let _ = (site, addr, size, value);
    }

    /// The computation attached to `tthread` starts here (baseline
    /// position).
    fn region_begin(&mut self, tthread: TthreadIndex) {
        let _ = tthread;
    }

    /// The current region ends.
    fn region_end(&mut self, tthread: TthreadIndex) {
        let _ = tthread;
    }

    /// The main thread consumes `tthread`'s outputs here.
    fn join(&mut self, tthread: TthreadIndex) {
        let _ = tthread;
    }
}

/// The silent probe: all hooks are no-ops. Running a kernel with `NoProbe`
/// is the un-instrumented baseline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoProbe;

impl Probe for NoProbe {}

impl<P: Probe + ?Sized> Probe for &mut P {
    fn compute(&mut self, n: u64) {
        (**self).compute(n);
    }
    fn load(&mut self, site: SiteId, addr: u64, size: u32, value: u64) {
        (**self).load(site, addr, size, value);
    }
    fn store(&mut self, site: SiteId, addr: u64, size: u32, value: u64) {
        (**self).store(site, addr, size, value);
    }
    fn region_begin(&mut self, tthread: TthreadIndex) {
        (**self).region_begin(tthread);
    }
    fn region_end(&mut self, tthread: TthreadIndex) {
        (**self).region_end(tthread);
    }
    fn join(&mut self, tthread: TthreadIndex) {
        (**self).join(tthread);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct CountingProbe {
        computes: u64,
        loads: u64,
        stores: u64,
        regions: u64,
        joins: u64,
    }

    impl Probe for CountingProbe {
        fn compute(&mut self, n: u64) {
            self.computes += n;
        }
        fn load(&mut self, _: SiteId, _: u64, _: u32, _: u64) {
            self.loads += 1;
        }
        fn store(&mut self, _: SiteId, _: u64, _: u32, _: u64) {
            self.stores += 1;
        }
        fn region_begin(&mut self, _: TthreadIndex) {
            self.regions += 1;
        }
        fn join(&mut self, _: TthreadIndex) {
            self.joins += 1;
        }
    }

    fn kernel<P: Probe>(mut p: P) {
        p.region_begin(0);
        p.compute(10);
        p.load(1, 0x100, 8, 42);
        p.store(2, 0x100, 8, 43);
        p.region_end(0);
        p.join(0);
    }

    #[test]
    fn no_probe_is_silent() {
        kernel(NoProbe); // must simply not blow up
    }

    #[test]
    fn counting_probe_sees_all_hooks() {
        let mut p = CountingProbe::default();
        kernel(&mut p);
        assert_eq!(p.computes, 10);
        assert_eq!(p.loads, 1);
        assert_eq!(p.stores, 1);
        assert_eq!(p.regions, 1);
        assert_eq!(p.joins, 1);
    }

    #[test]
    fn mut_ref_forwarding_composes() {
        let mut p = CountingProbe::default();
        {
            let r = &mut p;
            kernel(r);
        }
        kernel(&mut p);
        assert_eq!(p.loads, 2);
    }
}
