//! Constructing validated traces.

use std::fmt;

use crate::event::{Event, SiteId, TthreadIndex, Watch};
use crate::probe::Probe;

/// Errors detected while building or finishing a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceError {
    /// An event referenced a tthread index never declared.
    UnknownTthread(TthreadIndex),
    /// A region was opened while another was still open.
    NestedRegion {
        /// The region already open.
        open: TthreadIndex,
        /// The region that tried to open inside it.
        attempted: TthreadIndex,
    },
    /// A region end did not match the open region.
    MismatchedRegionEnd {
        /// The region currently open, if any.
        open: Option<TthreadIndex>,
        /// The region the end event named.
        got: TthreadIndex,
    },
    /// The trace finished with a region still open.
    UnclosedRegion(TthreadIndex),
    /// A memory access had a width outside 1–8 bytes.
    BadAccessSize(u32),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::UnknownTthread(t) => write!(f, "unknown tthread index {t}"),
            TraceError::NestedRegion { open, attempted } => {
                write!(
                    f,
                    "region tt{attempted} opened while tt{open} is still open"
                )
            }
            TraceError::MismatchedRegionEnd { open, got } => match open {
                Some(open) => write!(f, "region end tt{got} does not match open region tt{open}"),
                None => write!(f, "region end tt{got} with no region open"),
            },
            TraceError::UnclosedRegion(t) => write!(f, "trace ended with region tt{t} open"),
            TraceError::BadAccessSize(s) => write!(f, "memory access width {s} outside 1..=8"),
        }
    }
}

impl std::error::Error for TraceError {}

/// A finished, validated trace: header (tthreads + watches) and event
/// stream.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    pub(crate) tthread_names: Vec<String>,
    pub(crate) watches: Vec<Watch>,
    pub(crate) events: Vec<Event>,
}

impl Trace {
    /// Names of the declared tthreads, indexed by [`TthreadIndex`].
    pub fn tthread_names(&self) -> &[String] {
        &self.tthread_names
    }

    /// Declared watches.
    pub fn watches(&self) -> &[Watch] {
        &self.watches
    }

    /// The event stream.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Total dynamic instructions in the trace.
    pub fn instructions(&self) -> u64 {
        self.events.iter().map(Event::instructions).sum()
    }

    /// Total dynamic loads.
    pub fn loads(&self) -> u64 {
        self.events
            .iter()
            .filter(|e| matches!(e, Event::Load { .. }))
            .count() as u64
    }

    /// Total dynamic stores.
    pub fn stores(&self) -> u64 {
        self.events
            .iter()
            .filter(|e| matches!(e, Event::Store { .. }))
            .count() as u64
    }

    /// Instructions inside regions (the skippable computation), per tthread.
    pub fn region_instructions(&self) -> Vec<u64> {
        let mut totals = vec![0u64; self.tthread_names.len()];
        let mut open: Option<TthreadIndex> = None;
        for e in &self.events {
            match e {
                Event::RegionBegin { tthread } => open = Some(*tthread),
                Event::RegionEnd { .. } => open = None,
                other => {
                    if let Some(t) = open {
                        totals[t as usize] += other.instructions();
                    }
                }
            }
        }
        totals
    }
}

/// Incremental, validating trace builder.
///
/// Also implements [`Probe`], so a traced kernel writes into it directly.
/// Structural violations (nested or mismatched regions, bad tthread
/// indices) are recorded and reported by [`TraceBuilder::finish`].
///
/// # Examples
///
/// ```
/// use dtt_trace::{Event, TraceBuilder};
///
/// let mut b = TraceBuilder::new();
/// let t = b.declare_tthread("refresh");
/// b.declare_watch(t, 0x1000, 64);
/// b.compute_event(5);
/// b.region_begin_checked(t)?;
/// b.load_event(1, 0x1000, 8, 7);
/// b.region_end_checked(t)?;
/// b.join_event(t);
/// let trace = b.finish()?;
/// assert_eq!(trace.instructions(), 6);
/// assert_eq!(trace.events().len(), 5);
/// # Ok::<(), dtt_trace::TraceError>(())
/// ```
#[derive(Debug, Default)]
pub struct TraceBuilder {
    trace: Trace,
    open_region: Option<TthreadIndex>,
    first_error: Option<TraceError>,
}

impl TraceBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a tthread and returns its index.
    pub fn declare_tthread(&mut self, name: &str) -> TthreadIndex {
        let idx = self.trace.tthread_names.len() as TthreadIndex;
        self.trace.tthread_names.push(name.to_owned());
        idx
    }

    /// Declares that stores changing `[start, start+len)` trigger `tthread`.
    pub fn declare_watch(&mut self, tthread: TthreadIndex, start: u64, len: u64) {
        if !self.known(tthread) {
            self.record_error(TraceError::UnknownTthread(tthread));
            return;
        }
        self.trace.watches.push(Watch {
            tthread,
            start,
            len,
        });
    }

    fn known(&self, tthread: TthreadIndex) -> bool {
        (tthread as usize) < self.trace.tthread_names.len()
    }

    fn record_error(&mut self, e: TraceError) {
        if self.first_error.is_none() {
            self.first_error = Some(e);
        }
    }

    /// Appends a compute event (merging with a preceding compute event).
    pub fn compute_event(&mut self, n: u64) {
        if n == 0 {
            return;
        }
        if let Some(Event::Compute(prev)) = self.trace.events.last_mut() {
            *prev += n;
        } else {
            self.trace.events.push(Event::Compute(n));
        }
    }

    /// Appends a load event.
    pub fn load_event(&mut self, site: SiteId, addr: u64, size: u32, value: u64) {
        if size == 0 || size > 8 {
            self.record_error(TraceError::BadAccessSize(size));
            return;
        }
        self.trace.events.push(Event::Load {
            site,
            addr,
            size,
            value,
        });
    }

    /// Appends a store event.
    pub fn store_event(&mut self, site: SiteId, addr: u64, size: u32, value: u64) {
        if size == 0 || size > 8 {
            self.record_error(TraceError::BadAccessSize(size));
            return;
        }
        self.trace.events.push(Event::Store {
            site,
            addr,
            size,
            value,
        });
    }

    /// Opens a region, validating the structure.
    ///
    /// # Errors
    ///
    /// [`TraceError::UnknownTthread`] or [`TraceError::NestedRegion`].
    pub fn region_begin_checked(&mut self, tthread: TthreadIndex) -> Result<(), TraceError> {
        if !self.known(tthread) {
            let e = TraceError::UnknownTthread(tthread);
            self.record_error(e.clone());
            return Err(e);
        }
        if let Some(open) = self.open_region {
            let e = TraceError::NestedRegion {
                open,
                attempted: tthread,
            };
            self.record_error(e.clone());
            return Err(e);
        }
        self.open_region = Some(tthread);
        self.trace.events.push(Event::RegionBegin { tthread });
        Ok(())
    }

    /// Closes the open region, validating the match.
    ///
    /// # Errors
    ///
    /// [`TraceError::MismatchedRegionEnd`].
    pub fn region_end_checked(&mut self, tthread: TthreadIndex) -> Result<(), TraceError> {
        if self.open_region != Some(tthread) {
            let e = TraceError::MismatchedRegionEnd {
                open: self.open_region,
                got: tthread,
            };
            self.record_error(e.clone());
            return Err(e);
        }
        self.open_region = None;
        self.trace.events.push(Event::RegionEnd { tthread });
        Ok(())
    }

    /// Appends a join marker.
    pub fn join_event(&mut self, tthread: TthreadIndex) {
        if !self.known(tthread) {
            self.record_error(TraceError::UnknownTthread(tthread));
            return;
        }
        self.trace.events.push(Event::Join { tthread });
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.trace.events.len()
    }

    /// Whether no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.trace.events.is_empty()
    }

    /// Finishes the trace.
    ///
    /// # Errors
    ///
    /// Returns the first structural error recorded during building, or
    /// [`TraceError::UnclosedRegion`] if a region is still open.
    pub fn finish(self) -> Result<Trace, TraceError> {
        if let Some(e) = self.first_error {
            return Err(e);
        }
        if let Some(open) = self.open_region {
            return Err(TraceError::UnclosedRegion(open));
        }
        Ok(self.trace)
    }
}

impl Probe for TraceBuilder {
    fn compute(&mut self, n: u64) {
        self.compute_event(n);
    }

    fn load(&mut self, site: SiteId, addr: u64, size: u32, value: u64) {
        self.load_event(site, addr, size, value);
    }

    fn store(&mut self, site: SiteId, addr: u64, size: u32, value: u64) {
        self.store_event(site, addr, size, value);
    }

    fn region_begin(&mut self, tthread: TthreadIndex) {
        let _ = self.region_begin_checked(tthread);
    }

    fn region_end(&mut self, tthread: TthreadIndex) {
        let _ = self.region_end_checked(tthread);
    }

    fn join(&mut self, tthread: TthreadIndex) {
        self.join_event(tthread);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_inspect() {
        let mut b = TraceBuilder::new();
        let t = b.declare_tthread("t");
        b.declare_watch(t, 0, 8);
        b.compute_event(3);
        b.compute_event(4); // merges
        b.store_event(1, 0, 8, 5);
        b.region_begin_checked(t).unwrap();
        b.load_event(2, 0, 8, 5);
        b.compute_event(10);
        b.region_end_checked(t).unwrap();
        b.join_event(t);
        let tr = b.finish().unwrap();
        assert_eq!(tr.events().len(), 7); // the two computes merged into one
        assert_eq!(tr.instructions(), 3 + 4 + 1 + 1 + 10);
        assert_eq!(tr.loads(), 1);
        assert_eq!(tr.stores(), 1);
        assert_eq!(tr.region_instructions(), vec![11]);
        assert_eq!(tr.tthread_names(), &["t".to_string()]);
        assert_eq!(tr.watches().len(), 1);
    }

    #[test]
    fn zero_compute_is_dropped() {
        let mut b = TraceBuilder::new();
        b.compute_event(0);
        assert!(b.is_empty());
        assert_eq!(b.len(), 0);
    }

    #[test]
    fn nested_region_rejected() {
        let mut b = TraceBuilder::new();
        let t0 = b.declare_tthread("a");
        let t1 = b.declare_tthread("b");
        b.region_begin_checked(t0).unwrap();
        assert!(matches!(
            b.region_begin_checked(t1),
            Err(TraceError::NestedRegion { .. })
        ));
    }

    #[test]
    fn mismatched_end_rejected() {
        let mut b = TraceBuilder::new();
        let t0 = b.declare_tthread("a");
        let t1 = b.declare_tthread("b");
        b.region_begin_checked(t0).unwrap();
        assert!(matches!(
            b.region_end_checked(t1),
            Err(TraceError::MismatchedRegionEnd { .. })
        ));
        assert!(matches!(
            TraceBuilder::new().region_end_checked(0),
            Err(TraceError::MismatchedRegionEnd { open: None, .. })
        ));
    }

    #[test]
    fn unclosed_region_rejected_at_finish() {
        let mut b = TraceBuilder::new();
        let t = b.declare_tthread("a");
        b.region_begin_checked(t).unwrap();
        assert_eq!(b.finish().unwrap_err(), TraceError::UnclosedRegion(t));
    }

    #[test]
    fn unknown_tthread_rejected() {
        let mut b = TraceBuilder::new();
        b.declare_watch(7, 0, 8);
        assert_eq!(b.finish().unwrap_err(), TraceError::UnknownTthread(7));
    }

    #[test]
    fn bad_access_size_rejected() {
        let mut b = TraceBuilder::new();
        b.load_event(0, 0, 16, 0);
        assert_eq!(b.finish().unwrap_err(), TraceError::BadAccessSize(16));
        let mut b = TraceBuilder::new();
        b.store_event(0, 0, 0, 0);
        assert_eq!(b.finish().unwrap_err(), TraceError::BadAccessSize(0));
    }

    #[test]
    fn probe_impl_records_and_defers_errors() {
        let mut b = TraceBuilder::new();
        let t = b.declare_tthread("a");
        {
            use crate::probe::Probe;
            b.region_begin(t);
            b.compute(2);
            b.region_end(t);
            b.join(t);
        }
        let tr = b.finish().unwrap();
        assert_eq!(tr.instructions(), 2);
    }

    #[test]
    fn error_display_messages() {
        for e in [
            TraceError::UnknownTthread(1),
            TraceError::NestedRegion {
                open: 0,
                attempted: 1,
            },
            TraceError::MismatchedRegionEnd {
                open: Some(0),
                got: 1,
            },
            TraceError::MismatchedRegionEnd { open: None, got: 1 },
            TraceError::UnclosedRegion(0),
            TraceError::BadAccessSize(9),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
