//! The pinned chaos regression suite.
//!
//! Every [`FaultPoint`] gets a pinned case that arms it hard enough to be
//! guaranteed to fire (rate `ALWAYS`, small finite budget), so each
//! injection point's failure path is exercised — and its invariants
//! checked — on every CI run. On failure the harness prints the seed and a
//! replay command.
//!
//! Also here: the livelock regression for the bounded commit-retry loop
//! (an unbounded "go around again" loop wedges this test's watchdog), and
//! a graceful-shutdown check under injected scheduling delay.

use std::time::Duration;

use dtt_chaos::{pinned_point_case, run_config, run_many, ChaosConfig};
use dtt_core::fault::{FaultPlan, FaultPoint, ALWAYS, UNLIMITED};

/// Runs a pinned single-point case and asserts the point actually fired.
fn check_point(point: FaultPoint, seed: u64) {
    let cfg = pinned_point_case(point, seed);
    let summary = run_config(&cfg).unwrap_or_else(|failure| panic!("{failure}"));
    assert!(
        summary.injections[point as usize] >= 1,
        "pinned case for {} (seed {seed}) never fired its fault; injections: {:?}",
        point.name(),
        summary.injections
    );
}

#[test]
fn pinned_enqueue_faults_hold_invariants() {
    check_point(FaultPoint::Enqueue, 101);
}

#[test]
fn pinned_dequeue_faults_hold_invariants() {
    check_point(FaultPoint::Dequeue, 102);
}

#[test]
fn pinned_body_start_faults_hold_invariants() {
    let cfg = pinned_point_case(FaultPoint::BodyStart, 103);
    let summary = run_config(&cfg).unwrap_or_else(|failure| panic!("{failure}"));
    // Every injected body fault poisons; every observed poison must be
    // repaired. Two faults can hit the same tthread before a join observes
    // it, so repairs is bounded by injections, not equal to them.
    let injected = summary.injections[FaultPoint::BodyStart as usize];
    assert!(injected >= 1);
    assert!(
        (1..=injected).contains(&summary.poison_repairs),
        "expected 1..={injected} poison repairs, saw {}",
        summary.poison_repairs
    );
}

#[test]
fn pinned_commit_replay_faults_hold_invariants() {
    check_point(FaultPoint::CommitReplay, 104);
}

#[test]
fn pinned_retrigger_faults_hold_invariants() {
    let cfg = pinned_point_case(FaultPoint::Retrigger, 105);
    let summary = run_config(&cfg).unwrap_or_else(|failure| panic!("{failure}"));
    assert!(summary.injections[FaultPoint::Retrigger as usize] >= 1);
    // Forced retriggers are absorbed by the bounded retry loop.
    assert!(summary.stats.counters().commit_retries >= 1);
}

#[test]
fn pinned_obs_publish_faults_keep_accounting_exact() {
    // run_config itself asserts `issued == delivered + dropped` after the
    // drain, so passing means dropped publishes never unbalanced it.
    check_point(FaultPoint::ObsPublish, 106);
}

#[test]
fn pinned_worker_schedule_faults_hold_invariants() {
    check_point(FaultPoint::WorkerSchedule, 107);
}

/// The livelock regression: a fault schedule that forces a retrigger after
/// *every* commit, with no fire budget. Before the retry cap existed, the
/// worker's commit→retrigger loop ("go around again") would spin forever
/// and this test would die on the watchdog. With the cap, every execution
/// defers to its join after `commit_retry_cap` retries and the run
/// completes with exhaustions counted.
#[test]
fn unbounded_forced_retriggers_cannot_livelock_a_worker() {
    let mut cfg = ChaosConfig::baseline(108);
    cfg.commit_retry_cap = 3;
    cfg.watchdog = Duration::from_secs(20);
    cfg.plan = FaultPlan::new(108)
        .with_rate(FaultPoint::Retrigger, ALWAYS)
        .with_budget(FaultPoint::Retrigger, UNLIMITED);
    let summary = run_config(&cfg).unwrap_or_else(|failure| panic!("{failure}"));
    let c = summary.stats.counters();
    assert!(
        c.commit_retry_exhausted >= 1,
        "an always-on retrigger fault must exhaust the retry cap at least once"
    );
    assert!(c.commit_retries >= c.commit_retry_exhausted * 3);
}

/// Graceful shutdown stays graceful when workers are slowed by injected
/// scheduling delays: the post-run `shutdown` inside the harness must
/// drain within its bound instead of panicking or hanging.
#[test]
fn shutdown_drains_despite_injected_scheduling_delay() {
    let mut cfg = pinned_point_case(FaultPoint::WorkerSchedule, 109);
    cfg.plan = cfg
        .plan
        .with_budget(FaultPoint::WorkerSchedule, 64)
        .with_delay_us(500);
    run_config(&cfg).unwrap_or_else(|failure| panic!("{failure}"));
}

/// The injected dequeue-reject regression: the worker used to discard the
/// requeue's outcome — with the queue full the entry was silently dropped,
/// stranding its tthread in Queued with no pending execution anywhere
/// (a wedge unless a join happened to steal it). Both dispatch modes must
/// handle the rejected pop explicitly (run the entry themselves when the
/// requeue fails) and keep draining.
#[test]
fn pinned_dequeue_rejects_cannot_strand_queued_tthreads() {
    for (seed, lockfree) in [(110, true), (111, false)] {
        let mut cfg = pinned_point_case(FaultPoint::Dequeue, seed);
        cfg.lockfree_dispatch = lockfree;
        cfg.queue_capacity = 2; // keep the requeue's Full outcome reachable
        cfg.plan = cfg.plan.with_budget(FaultPoint::Dequeue, 64);
        let summary = run_config(&cfg).unwrap_or_else(|failure| panic!("{failure}"));
        assert!(
            summary.injections[FaultPoint::Dequeue as usize] >= 1,
            "pinned dequeue-reject case (seed {seed}) never fired"
        );
    }
}

/// A dropped worker wakeup — the eventcount epoch bump and the
/// notification both suppressed, a true lost wakeup — must cost at most
/// one park period, never a wedge: the workers' timed park is the rescue
/// path the invariant suite exercises here.
#[test]
fn pinned_wake_drops_cannot_wedge_dispatch() {
    let mut cfg = pinned_point_case(FaultPoint::WakeDrop, 112);
    cfg.plan = cfg.plan.with_budget(FaultPoint::WakeDrop, 64);
    let summary = run_config(&cfg).unwrap_or_else(|failure| panic!("{failure}"));
    assert!(
        summary.injections[FaultPoint::WakeDrop as usize] >= 1,
        "pinned wake-drop case never fired; injections: {:?}",
        summary.injections
    );
}

/// A suppressed steal attempt must never affect correctness, only
/// latency: the victim shard's owner still drains its own work, and the
/// thief's next timed park retries the steal. The harness's conservation
/// invariants (including `steal_batches <= steals` and the pending-queue
/// length audit) run on every case.
#[test]
fn pinned_steal_batch_faults_hold_invariants() {
    check_point(FaultPoint::StealBatch, 113);
}

/// A dropped join-completion broadcast — the lock-free joiner's wake
/// suppressed after a worker finishes its target — must cost at most one
/// joiner park period, never a wedge: the joiner's timed park re-reads the
/// slot status word and observes the completed generation.
#[test]
fn pinned_join_wake_drops_cannot_wedge_joins() {
    check_point(FaultPoint::JoinWake, 114);
}

/// A swallowed cascade raise must never wedge the run or corrupt values:
/// the downstream total tthread still converges via the harness's
/// quiescing mark-dirty join, and the wave conservation identity (checked
/// by the harness on every run) excludes the dropped raises.
#[test]
fn pinned_cascade_drops_hold_invariants() {
    let mut cfg = pinned_point_case(FaultPoint::CascadeDrop, 116);
    cfg.plan = cfg.plan.with_budget(FaultPoint::CascadeDrop, 64);
    let summary = run_config(&cfg).unwrap_or_else(|failure| panic!("{failure}"));
    assert!(
        summary.injections[FaultPoint::CascadeDrop as usize] >= 1,
        "pinned cascade-drop case never fired; injections: {:?}",
        summary.injections
    );
}

/// Both dispatch modes survive an always-on cascade-drop schedule: the
/// locked ablation baseline routes raises through a different status
/// machine but must handle swallowed waves identically.
#[test]
fn pinned_cascade_drops_hold_invariants_locked_dispatch() {
    let mut cfg = pinned_point_case(FaultPoint::CascadeDrop, 117);
    cfg.lockfree_dispatch = false;
    cfg.plan = cfg.plan.with_budget(FaultPoint::CascadeDrop, 64);
    let summary = run_config(&cfg).unwrap_or_else(|failure| panic!("{failure}"));
    assert!(
        summary.injections[FaultPoint::CascadeDrop as usize] >= 1,
        "pinned cascade-drop case (locked dispatch) never fired; injections: {:?}",
        summary.injections
    );
}

/// The rescue-latency budget, measured directly: with *every* worker wake
/// dropped (epoch bump included — a true lost wakeup), a triggered
/// tthread must still execute within two park periods, carried entirely
/// by the worker's timed-park rescue. The `park_timeouts` counter proves
/// the rescue path (and not a real wake) did the carrying. The park
/// period is set through `Config::park_timeout` (shorter than the 50 ms
/// default, so the rescue budget is tested at a configured value, not
/// the constant).
#[test]
fn dropped_wake_is_rescued_within_two_park_periods() {
    use dtt_core::{Config, Runtime};
    use std::time::Instant;

    let park = Duration::from_millis(20);
    let plan = FaultPlan::new(115)
        .with_rate(FaultPoint::WakeDrop, ALWAYS)
        .with_budget(FaultPoint::WakeDrop, UNLIMITED);
    let cfg = Config::default()
        .with_workers(1)
        .with_lockfree_dispatch(true)
        .with_park_timeout(park)
        .with_fault_plan(plan);
    let mut rt = Runtime::new(cfg, 0u64);
    let cells = rt.alloc_array::<u64>(1).unwrap();
    let id = rt.register("sum", move |ctx| {
        let v = ctx.read(cells, 0);
        *ctx.user_mut() = v;
    });
    rt.watch(id, cells.range()).unwrap();

    // Synchronize with the worker's park cycle: once `park_timeouts`
    // ticks, the worker has just timed out, found nothing, and is
    // committed to (at most) one more full park period before it scans
    // again. Any trigger landing now must be picked up by that rescue
    // scan — its wake is guaranteed to be dropped.
    let deadline = Instant::now() + Duration::from_secs(10);
    let p0 = rt.stats().counters().park_timeouts;
    while rt.stats().counters().park_timeouts == p0 {
        assert!(
            Instant::now() < deadline,
            "worker never reached a timed park"
        );
        std::thread::yield_now();
    }

    let t0 = Instant::now();
    rt.with(|ctx| ctx.write(cells, 0, 7));
    while rt.stats().counters().worker_executions == 0 {
        assert!(
            t0.elapsed() < park * 2,
            "dropped wake was not rescued within two park periods"
        );
        std::thread::yield_now();
    }

    let stats = rt.stats();
    let c = stats.counters();
    assert!(
        c.park_timeouts > p0,
        "rescue must have come from a timed park"
    );
    assert_eq!(
        c.worker_wakes, 0,
        "every wake was dropped, so none may be counted"
    );
    assert_eq!(rt.with(|ctx| *ctx.user()), 7);
}

/// Randomized smoke: a block of derived seeds must all hold the
/// invariants. The seeds are pinned here so CI is reproducible; the CI
/// chaos job additionally runs a fresh randomized block with the seed
/// echoed for replay.
#[test]
fn randomized_seed_block_holds_invariants() {
    let summaries = run_many(2_000, 8).unwrap_or_else(|failure| panic!("{failure}"));
    assert_eq!(summaries.len(), 8);
}
