//! The pinned serve-chaos regression suite.
//!
//! Every serve-layer [`FaultPoint`] gets a pinned case that arms it hard
//! enough to be guaranteed to fire, so each request-lifecycle failure
//! path — conn-drop mid-batch, slow-client stall, accept-queue overflow
//! — is exercised, with the conservation identities checked, on every CI
//! run. Also here: the drain-under-load regression (drain-mode shutdown
//! initiated while clients are still sending must complete inside the
//! watchdog with nothing lost) and a randomized seed block.

use dtt_chaos::serve::{pinned_serve_case, run_serve_config, run_serve_seed, ServeChaosConfig};
use dtt_core::fault::FaultPoint;

/// Conn-drop mid-batch: admitted requests whose connections the server
/// severs without a response must be conserved via `dropped_conns`, and
/// the run must not wedge.
#[test]
fn pinned_conn_drops_mid_batch_are_conserved() {
    let cfg = pinned_serve_case(FaultPoint::ConnDrop, 118);
    let summary = run_serve_config(&cfg).unwrap_or_else(|failure| panic!("{failure}"));
    assert!(
        summary.injections[FaultPoint::ConnDrop as usize] >= 1,
        "pinned conn-drop case never fired; injections: {:?}",
        summary.injections
    );
    assert!(
        summary.stats.serve_dropped_conns >= 1,
        "an injected conn-drop must surface in dropped_conns: {:?}",
        summary.stats
    );
}

/// Shed under injected accept-queue overflow: every overflow becomes an
/// explicit `Shed` response, never a lost request. The harness asserts
/// `accepts == admits + sheds` on every run; this pins that sheds
/// actually happened.
#[test]
fn pinned_accept_overflows_shed_explicitly() {
    let cfg = pinned_serve_case(FaultPoint::AcceptOverflow, 119);
    let summary = run_serve_config(&cfg).unwrap_or_else(|failure| panic!("{failure}"));
    let fired = summary.injections[FaultPoint::AcceptOverflow as usize];
    assert!(fired >= 1, "pinned overflow case never fired");
    assert!(
        summary.stats.serve_sheds >= fired,
        "every injected overflow must shed: {fired} fired, {} sheds",
        summary.stats.serve_sheds
    );
}

/// Drain under load: shutdown starts while clients are still sending.
/// In-flight requests finish, the listener closes, the engine tears its
/// runtime down — inside the watchdog, with conservation intact (the
/// harness checks it) and a second shutdown returning Ok.
#[test]
fn pinned_drain_under_load_completes_and_conserves() {
    let mut cfg = ServeChaosConfig::baseline(120);
    cfg.drain_mid_run = true;
    cfg.conns = 6;
    cfg.requests_per_conn = 200;
    let summary = run_serve_config(&cfg).unwrap_or_else(|failure| panic!("{failure}"));
    assert!(
        summary.stats.serve_accepts >= 1,
        "the drain fired before any request landed; raise the ramp: {:?}",
        summary.stats
    );
}

/// Slow-client stall: the injected delay between decode and admission
/// stretches requests but must never wedge the handler or break
/// conservation.
#[test]
fn pinned_client_stalls_cannot_wedge_handlers() {
    let mut cfg = pinned_serve_case(FaultPoint::ClientStall, 121);
    cfg.plan = cfg.plan.with_delay_us(2_000);
    let summary = run_serve_config(&cfg).unwrap_or_else(|failure| panic!("{failure}"));
    assert!(
        summary.injections[FaultPoint::ClientStall as usize] >= 1,
        "pinned client-stall case never fired; injections: {:?}",
        summary.injections
    );
}

/// Randomized smoke: a block of derived serve seeds must all hold the
/// request-conservation invariants. Pinned here so CI is reproducible.
#[test]
fn randomized_serve_seed_block_holds_invariants() {
    for seed in 3_000..3_006u64 {
        run_serve_seed(seed).unwrap_or_else(|failure| panic!("{failure}"));
    }
}
