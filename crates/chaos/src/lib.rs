//! Chaos harness for the DTT runtime.
//!
//! Runs a counter-conservation workload under seeded, randomized fault
//! schedules (see [`dtt_core::fault`]) and asserts global invariants after
//! every run:
//!
//! * **value conservation** — after joins (with poison/timeout repair),
//!   every tthread's cached sum equals the sum recomputed directly from
//!   tracked memory: executions are exactly-once with respect to the data;
//! * **counter conservation** — the runtime's counters balance (stores
//!   split into silent + changing, executions into inline + worker, sheds
//!   never exceed overflows, no timeout counts without a deadline);
//! * **no poison without a panic** — a poisoned tthread implies an
//!   injected body fault (the workload bodies never panic on their own);
//! * **exact observability accounting** — `issued == delivered + dropped`
//!   at the quiescent drain, even with injected publish drops;
//! * **the runtime never wedges** — every run finishes inside a watchdog
//!   deadline, and a graceful [`dtt_core::runtime::Runtime::shutdown`]
//!   succeeds afterwards.
//!
//! A failing run reports its seed plus a copy-paste replay command, and
//! [`shrink`] reduces the fault schedule to a minimal set of armed points
//! (and a minimal op count) that still reproduces the failure.
//!
//! The [`serve`] module applies the same discipline to the network
//! front-end's *request* lifecycle: seeded conn-drop/stall/overflow
//! schedules against a live `dtt-serve` server, with request-conservation
//! invariants, a watchdog, and its own shrinker.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod serve;

use std::fmt;
use std::sync::mpsc;
use std::thread;
use std::time::Duration;

use dtt_core::fault::{FaultPlan, FaultPoint, ALWAYS};
use dtt_core::{Config, Error, OverflowPolicy, Runtime, StatsSnapshot};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Tracked cells summed by each tthread.
const SLICE: usize = 8;
/// Cap on repair attempts per tthread before the run is declared stuck.
const MAX_REPAIRS: usize = 100;

/// One chaos case: workload shape plus the fault schedule, fully derived
/// from a seed (see [`ChaosConfig::from_seed`]) so every case is
/// replayable from one integer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosConfig {
    /// The seed this case was derived from (also seeds the fault plan and
    /// the workload's store sequence).
    pub seed: u64,
    /// Worker threads (always at least one — chaos targets the parallel
    /// executor).
    pub workers: usize,
    /// Pending-queue capacity (small, to exercise overflow paths).
    pub queue_capacity: usize,
    /// Number of sum tthreads, each watching its own slice of cells.
    pub tthreads: usize,
    /// Tracked stores the driver issues.
    pub ops: usize,
    /// Queue-overflow policy under test.
    pub overflow: OverflowPolicy,
    /// Whether the lock-free dispatch path is on (the default) or the
    /// locked ablation baseline is exercised instead.
    pub lockfree_dispatch: bool,
    /// Whether idle workers steal from foreign pending-queue shards (the
    /// default) or the park-on-empty affinity ablation runs instead.
    pub work_stealing: bool,
    /// Commit→retrigger retry cap.
    pub commit_retry_cap: u32,
    /// Optional per-body deadline.
    pub body_deadline: Option<Duration>,
    /// The fault schedule.
    pub plan: FaultPlan,
    /// Wall-clock budget for the whole run; exceeding it is itself an
    /// invariant failure ("the runtime wedged").
    pub watchdog: Duration,
}

impl ChaosConfig {
    /// Derives a randomized case from `seed`. Every armed fault point gets
    /// a finite fire budget so schedules always let the run make progress.
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut plan = FaultPlan::new(seed).with_delay_us(rng.gen_range(1..=50u32));
        // Randomize over the runtime-core points only: the serve-layer
        // points (`FaultPoint::SERVE`) are never probed by this harness's
        // workload, and keeping them out preserves the draw sequence (and
        // thus the derived case) for every existing seed.
        for point in FaultPoint::CORE {
            // Arm roughly half the points, at a 10–30% fire rate.
            if rng.gen_range(0..2u32) == 0 {
                plan = plan
                    .with_rate(point, rng.gen_range(6_553..=19_660u16))
                    .with_budget(point, rng.gen_range(4..=32u32));
            }
        }
        let overflow = match rng.gen_range(0..3u32) {
            0 => OverflowPolicy::ExecuteInline,
            1 => OverflowPolicy::DeferToJoin,
            _ => OverflowPolicy::Backpressure,
        };
        ChaosConfig {
            seed,
            workers: rng.gen_range(1..=4usize),
            queue_capacity: rng.gen_range(2..=8usize),
            tthreads: rng.gen_range(2..=5usize),
            ops: rng.gen_range(200..=600usize),
            overflow,
            // Mostly the lock-free dispatch path, with the locked ablation
            // baseline mixed in so both keep surviving the same schedules.
            lockfree_dispatch: rng.gen_range(0..4u32) != 0,
            // Same idea for the stealing ablation: mostly on, sometimes
            // the affinity-only scheduler.
            work_stealing: rng.gen_range(0..4u32) != 0,
            commit_retry_cap: rng.gen_range(1..=8u32),
            body_deadline: None,
            plan,
            watchdog: Duration::from_secs(30),
        }
    }

    /// A quiet baseline case (no faults armed) with the given seed.
    pub fn baseline(seed: u64) -> Self {
        ChaosConfig {
            seed,
            workers: 2,
            queue_capacity: 4,
            tthreads: 3,
            ops: 400,
            overflow: OverflowPolicy::ExecuteInline,
            lockfree_dispatch: true,
            work_stealing: true,
            commit_retry_cap: 8,
            body_deadline: None,
            plan: FaultPlan::new(seed),
            watchdog: Duration::from_secs(30),
        }
    }

    fn describe(&self) -> String {
        let armed: Vec<String> = self
            .plan
            .armed_points()
            .into_iter()
            .map(|p| {
                format!(
                    "{}(rate={},budget={})",
                    p.name(),
                    self.plan.rate(p),
                    self.plan.budget(p)
                )
            })
            .collect();
        format!(
            "workers={} queue={} tthreads={} ops={} overflow={:?} dispatch={} stealing={} retry_cap={} armed=[{}]",
            self.workers,
            self.queue_capacity,
            self.tthreads,
            self.ops,
            self.overflow,
            if self.lockfree_dispatch {
                "lockfree"
            } else {
                "locked"
            },
            if self.work_stealing { "on" } else { "off" },
            self.commit_retry_cap,
            armed.join(", ")
        )
    }
}

/// What a successful chaos run observed.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// The case's seed.
    pub seed: u64,
    /// Final runtime counter snapshot.
    pub stats: StatsSnapshot,
    /// Per-[`FaultPoint`] injected-fault counts.
    pub injections: [u64; FaultPoint::COUNT],
    /// Poisoned tthreads repaired (clear + force) during the run.
    pub poison_repairs: u64,
    /// Timed-out tthreads repaired during the run.
    pub timeout_repairs: u64,
}

impl RunSummary {
    /// One-line human summary.
    pub fn line(&self) -> String {
        let c = self.stats.counters();
        format!(
            "seed {:>4}: ok | stores {} ({} silent) | exec {} ({} worker) | \
             retries {} (exhausted {}) | sheds {} | cascades {} ({} cutoff) | \
             injected {} | repaired {}p/{}t",
            self.seed,
            c.tracked_stores,
            c.silent_stores,
            c.executions,
            c.worker_executions,
            c.commit_retries,
            c.commit_retry_exhausted,
            c.overflow_sheds,
            c.cascades,
            c.cascade_cutoffs,
            self.injections.iter().sum::<u64>(),
            self.poison_repairs,
            self.timeout_repairs,
        )
    }
}

/// A chaos invariant violation, carrying everything needed to replay it.
#[derive(Debug, Clone)]
pub struct ChaosFailure {
    /// The failing case's seed.
    pub seed: u64,
    /// Which invariant broke, and how.
    pub message: String,
    /// The full failing case (feed to [`shrink`] for a minimal schedule).
    pub config: ChaosConfig,
}

impl ChaosFailure {
    /// The copy-paste command that replays this failure.
    pub fn replay_command(&self) -> String {
        format!("cargo run -p dtt-cli -- chaos --seed {}", self.seed)
    }
}

impl fmt::Display for ChaosFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "chaos: seed {} FAILED: {}", self.seed, self.message)?;
        writeln!(f, "  case: {}", self.config.describe())?;
        write!(f, "  replay: {}", self.replay_command())
    }
}

impl std::error::Error for ChaosFailure {}

/// Runs the case derived from `seed` under the watchdog.
///
/// # Errors
///
/// Returns a [`ChaosFailure`] naming the violated invariant.
pub fn run_seed(seed: u64) -> Result<RunSummary, Box<ChaosFailure>> {
    run_config(&ChaosConfig::from_seed(seed))
}

/// Runs `runs` consecutive seeds starting at `base_seed`, stopping at the
/// first failure.
///
/// # Errors
///
/// Returns the first [`ChaosFailure`].
pub fn run_many(base_seed: u64, runs: usize) -> Result<Vec<RunSummary>, Box<ChaosFailure>> {
    (0..runs)
        .map(|i| run_seed(base_seed.wrapping_add(i as u64)))
        .collect()
}

/// Runs one explicit case under its watchdog. A run that does not finish
/// in time is reported as a wedge (the stuck worker thread is leaked — the
/// process is already compromised at that point).
///
/// # Errors
///
/// Returns a [`ChaosFailure`] naming the violated invariant.
pub fn run_config(cfg: &ChaosConfig) -> Result<RunSummary, Box<ChaosFailure>> {
    let (tx, rx) = mpsc::channel();
    let inner_cfg = cfg.clone();
    let worker = thread::spawn(move || {
        let _ = tx.send(run_inner(&inner_cfg));
    });
    match rx.recv_timeout(cfg.watchdog) {
        Ok(result) => {
            let _ = worker.join();
            result.map_err(|message| {
                Box::new(ChaosFailure {
                    seed: cfg.seed,
                    message,
                    config: cfg.clone(),
                })
            })
        }
        Err(_) => Err(Box::new(ChaosFailure {
            seed: cfg.seed,
            message: format!(
                "wedged: the run did not finish within the {:?} watchdog",
                cfg.watchdog
            ),
            config: cfg.clone(),
        })),
    }
}

/// Shrinks a failing case to a minimal one that still fails, using the
/// given failure predicate: greedily disarms fault points and halves the
/// op count while the failure reproduces, to a fixpoint.
pub fn shrink_with(cfg: &ChaosConfig, fails: &dyn Fn(&ChaosConfig) -> bool) -> ChaosConfig {
    let mut current = cfg.clone();
    loop {
        let mut progressed = false;
        for point in FaultPoint::ALL {
            if current.plan.rate(point) == 0 {
                continue;
            }
            let mut candidate = current.clone();
            candidate.plan = candidate.plan.clone().with_rate(point, 0);
            if fails(&candidate) {
                current = candidate;
                progressed = true;
            }
        }
        if current.ops > 50 {
            let mut candidate = current.clone();
            candidate.ops /= 2;
            if fails(&candidate) {
                current = candidate;
                progressed = true;
            }
        }
        if !progressed {
            return current;
        }
    }
}

/// Shrinks a failing case by re-running candidates with [`run_config`].
/// Expensive when the failure is a wedge (each reproducing candidate costs
/// a watchdog timeout).
pub fn shrink(cfg: &ChaosConfig) -> ChaosConfig {
    shrink_with(cfg, &|candidate| run_config(candidate).is_err())
}

/// The actual run: build the runtime, drive the workload, check every
/// invariant. Returns the violated invariant as an error string.
fn run_inner(cfg: &ChaosConfig) -> Result<RunSummary, String> {
    let mut rt_cfg = Config::default()
        .with_workers(cfg.workers)
        .with_queue_capacity(cfg.queue_capacity)
        .with_overflow(cfg.overflow)
        .with_lockfree_dispatch(cfg.lockfree_dispatch)
        .with_work_stealing(cfg.work_stealing)
        .with_commit_retry_cap(cfg.commit_retry_cap)
        .with_observability(true)
        .with_fault_plan(cfg.plan.clone());
    if let Some(deadline) = cfg.body_deadline {
        rt_cfg = rt_cfg.with_body_deadline(deadline);
    }

    // User state: one cached sum per tthread, plus the grand total cached
    // by the cascade-stage tthread in the last slot.
    let mut rt = Runtime::new(rt_cfg, vec![0u64; cfg.tthreads + 1]);
    let mut slices = Vec::with_capacity(cfg.tthreads);
    let mut ids = Vec::with_capacity(cfg.tthreads);
    // Each sum tthread publishes its sum into this tracked array, which a
    // downstream `total` tthread watches: every changing sum commit raises
    // it as a cascade wave unit, exercising the incremental-graph path
    // (and [`FaultPoint::CascadeDrop`] when armed).
    let sums = rt
        .alloc_array::<u64>(cfg.tthreads)
        .map_err(|e| format!("alloc failed: {e}"))?;
    for g in 0..cfg.tthreads {
        let cells = rt
            .alloc_array::<u64>(SLICE)
            .map_err(|e| format!("alloc failed: {e}"))?;
        let id = rt.register(&format!("sum{g}"), move |ctx| {
            let mut acc = 0u64;
            for i in 0..SLICE {
                acc = acc.wrapping_add(ctx.read(cells, i));
            }
            ctx.write(sums, g, acc);
            ctx.user_mut()[g] = acc;
        });
        rt.watch(id, cells.range())
            .map_err(|e| format!("watch failed: {e}"))?;
        slices.push(cells);
        ids.push(id);
    }
    let total_slot = cfg.tthreads;
    let total_n = cfg.tthreads;
    let total_id = rt.register("total", move |ctx| {
        let mut acc = 0u64;
        for g in 0..total_n {
            acc = acc.wrapping_add(ctx.read(sums, g));
        }
        ctx.user_mut()[total_slot] = acc;
    });
    rt.watch(total_id, sums.range())
        .map_err(|e| format!("watch failed: {e}"))?;

    let mut poison_repairs = 0u64;
    let mut timeout_repairs = 0u64;

    // Drive: random small-domain stores (small values make silent stores
    // common), with occasional mid-run joins to exercise every outcome.
    // The driver yields between stores — a hot store loop outruns worker
    // wakeup entirely and every execution degenerates to inline-at-join,
    // leaving the worker fault paths unexercised.
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xC0FF_EE00);
    for op in 0..cfg.ops {
        let g = rng.gen_range(0..cfg.tthreads);
        let i = rng.gen_range(0..SLICE);
        let v = rng.gen_range(0..4u64);
        let cells = slices[g];
        rt.with(|ctx| ctx.write(cells, i, v));
        if rng.gen_range(0..8u32) == 0 {
            repair_join(&mut rt, ids[g], &mut poison_repairs, &mut timeout_repairs)?;
        }
        if op % 32 == 31 {
            thread::sleep(Duration::from_micros(200));
        } else {
            thread::yield_now();
        }
    }

    // Quiesce: every sum tthread joined (repairing injected
    // poison/timeouts), then the cascade-stage total. The explicit
    // mark-dirty is the documented convergence path when an armed
    // [`FaultPoint::CascadeDrop`] swallowed the raise that would have
    // made the final join run it.
    for &id in &ids {
        repair_join(&mut rt, id, &mut poison_repairs, &mut timeout_repairs)?;
    }
    rt.mark_dirty(total_id)
        .map_err(|e| format!("mark_dirty(total) failed: {e}"))?;
    repair_join(&mut rt, total_id, &mut poison_repairs, &mut timeout_repairs)?;

    // Invariant: value conservation. Each cached sum equals the sum
    // recomputed straight from tracked memory.
    for (g, (&id, &cells)) in ids.iter().zip(&slices).enumerate() {
        let (expected, actual) = rt.with(|ctx| {
            let mut sum = 0u64;
            for i in 0..SLICE {
                sum = sum.wrapping_add(ctx.read(cells, i));
            }
            (sum, ctx.user()[g])
        });
        if expected != actual {
            return Err(format!(
                "value conservation violated for {id}: cached sum {actual} != tracked sum {expected}"
            ));
        }
    }
    // Cascade-stage value conservation: the total recomputed from the
    // tracked per-tthread sums must match the cached grand total.
    {
        let n = cfg.tthreads;
        let (expected, actual) = rt.with(|ctx| {
            let mut acc = 0u64;
            for g in 0..n {
                acc = acc.wrapping_add(ctx.read(sums, g));
            }
            (acc, ctx.user()[n])
        });
        if expected != actual {
            return Err(format!(
                "cascade value conservation violated: cached total {actual} != tracked total {expected}"
            ));
        }
    }

    let injections = rt.fault_injections();
    let stats = rt.stats();
    let c = stats.counters();

    // Invariant: counter conservation.
    if c.tracked_stores != c.silent_stores + c.changing_stores {
        return Err(format!(
            "counter conservation violated: tracked_stores {} != silent {} + changing {}",
            c.tracked_stores, c.silent_stores, c.changing_stores
        ));
    }
    if c.executions != c.inline_executions + c.worker_executions {
        return Err(format!(
            "counter conservation violated: executions {} != inline {} + worker {}",
            c.executions, c.inline_executions, c.worker_executions
        ));
    }
    if c.overflow_sheds > c.queue_overflows {
        return Err(format!(
            "counter conservation violated: overflow_sheds {} > queue_overflows {}",
            c.overflow_sheds, c.queue_overflows
        ));
    }
    if c.steal_batches > c.steals {
        return Err(format!(
            "counter conservation violated: steal_batches {} > steals {}",
            c.steal_batches, c.steals
        ));
    }
    if (!cfg.lockfree_dispatch || !cfg.work_stealing || cfg.workers == 0) && c.steals != 0 {
        return Err(format!(
            "steals is {} with stealing unavailable (lockfree={}, stealing={}, workers={})",
            c.steals, cfg.lockfree_dispatch, cfg.work_stealing, cfg.workers
        ));
    }
    if cfg.workers == 0 && c.park_timeouts != 0 {
        return Err(format!(
            "park_timeouts is {} with no workers configured",
            c.park_timeouts
        ));
    }
    if cfg.body_deadline.is_none() && c.body_timeouts != 0 {
        return Err(format!(
            "body_timeouts is {} with no deadline configured",
            c.body_timeouts
        ));
    }
    // Invariant: wave conservation. Every cascade wave unit is a downstream
    // activation, a coalesce, or a terminal cutoff — dropped raises
    // (CascadeDrop) and per-epoch dedups are excluded on both sides.
    if c.cascades != c.cascade_enqueues + c.cascade_coalesced + c.cascade_cutoffs {
        return Err(format!(
            "wave conservation violated: cascades {} != enqueues {} + coalesced {} + cutoffs {}",
            c.cascades, c.cascade_enqueues, c.cascade_coalesced, c.cascade_cutoffs
        ));
    }

    // Invariant: poison implies an injected body fault (the workload's
    // bodies never panic on their own).
    if poison_repairs > 0 && injections[FaultPoint::BodyStart as usize] == 0 {
        return Err(format!(
            "{poison_repairs} tthreads poisoned but no body fault was injected"
        ));
    }
    if timeout_repairs > 0 && cfg.body_deadline.is_none() {
        return Err(format!(
            "{timeout_repairs} tthreads timed out but no deadline was configured"
        ));
    }

    // Invariant: exact observability accounting at the quiescent drain.
    let rec = rt.obs_drain();
    if !rec.accounting_balances() {
        return Err(format!(
            "obs accounting broken: issued {} != delivered {} + dropped {}",
            rec.issued, rec.delivered, rec.dropped
        ));
    }

    // Invariant: the runtime shuts down gracefully — all workers idle by
    // now, so the bounded drain must succeed.
    rt.shutdown(Duration::from_secs(10))
        .map_err(|e| format!("graceful shutdown failed on a quiescent runtime: {e}"))?;

    Ok(RunSummary {
        seed: cfg.seed,
        stats,
        injections,
        poison_repairs,
        timeout_repairs,
    })
}

/// Joins `id`, repairing injected poison/timeout flags (clear, then force
/// an inline re-execution, then re-join in case the forced run was hit by
/// a fresh fault) and counting each repair. Bounded: a tthread that cannot
/// be repaired in [`MAX_REPAIRS`] attempts fails the run.
fn repair_join(
    rt: &mut Runtime<Vec<u64>>,
    id: dtt_core::TthreadId,
    poison_repairs: &mut u64,
    timeout_repairs: &mut u64,
) -> Result<(), String> {
    for _ in 0..MAX_REPAIRS {
        match rt.join(id) {
            Ok(_) => return Ok(()),
            Err(Error::TthreadPoisoned(_)) => {
                *poison_repairs += 1;
                rt.clear_poison(id).map_err(|e| e.to_string())?;
                rt.force(id)
                    .map_err(|e| format!("force after poison: {e}"))?;
            }
            Err(Error::TthreadTimedOut(_)) => {
                *timeout_repairs += 1;
                rt.clear_timeout(id).map_err(|e| e.to_string())?;
                rt.force(id)
                    .map_err(|e| format!("force after timeout: {e}"))?;
            }
            Err(e) => return Err(format!("join({id}) failed: {e}")),
        }
    }
    Err(format!(
        "tthread {id} unrepairable after {MAX_REPAIRS} attempts"
    ))
}

/// A pinned case arming exactly one fault point hard enough that it is
/// guaranteed to fire (rate [`ALWAYS`], small finite budget). Used by the
/// regression suite so every injection point is exercised on every CI run.
pub fn pinned_point_case(point: FaultPoint, seed: u64) -> ChaosConfig {
    let mut cfg = ChaosConfig::baseline(seed);
    cfg.plan = FaultPlan::new(seed)
        .with_rate(point, ALWAYS)
        .with_budget(point, 6)
        .with_delay_us(20);
    if point == FaultPoint::Retrigger {
        // Keep the retry loop visibly bounded.
        cfg.commit_retry_cap = 3;
    }
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_seed_is_deterministic_and_budgeted() {
        let a = ChaosConfig::from_seed(42);
        let b = ChaosConfig::from_seed(42);
        assert_eq!(a, b);
        assert_ne!(a, ChaosConfig::from_seed(43));
        assert!(a.workers >= 1);
        for p in a.plan.armed_points() {
            assert_ne!(a.plan.budget(p), dtt_core::fault::UNLIMITED);
        }
    }

    #[test]
    fn baseline_run_is_quiet() {
        let summary = run_config(&ChaosConfig::baseline(7)).expect("baseline must pass");
        assert_eq!(summary.injections, [0; FaultPoint::COUNT]);
        assert_eq!(summary.poison_repairs, 0);
        assert_eq!(summary.timeout_repairs, 0);
        assert!(summary.stats.counters().tracked_stores >= 400);
    }

    #[test]
    fn failure_report_names_seed_and_replay() {
        let failure = ChaosFailure {
            seed: 99,
            message: "value conservation violated".into(),
            config: ChaosConfig::baseline(99),
        };
        let text = failure.to_string();
        assert!(text.contains("seed 99"));
        assert!(text.contains("replay: cargo run -p dtt-cli -- chaos --seed 99"));
    }

    #[test]
    fn shrink_disarms_irrelevant_points_and_halves_ops() {
        // Synthetic predicate: the "failure" reproduces iff Retrigger is
        // armed and at least 100 ops run. Shrinking must strip every other
        // point and walk ops down to the boundary.
        let mut cfg = ChaosConfig::baseline(1);
        cfg.ops = 400;
        for p in FaultPoint::ALL {
            cfg.plan = cfg.plan.clone().with_rate(p, ALWAYS).with_budget(p, 8);
        }
        let fails = |c: &ChaosConfig| c.plan.rate(FaultPoint::Retrigger) > 0 && c.ops >= 100;
        let minimal = shrink_with(&cfg, &fails);
        assert_eq!(minimal.plan.armed_points(), vec![FaultPoint::Retrigger]);
        assert_eq!(minimal.ops, 100);
        assert!(fails(&minimal));
    }

    #[test]
    fn shrink_keeps_a_passing_config_untouched() {
        let cfg = ChaosConfig::baseline(2);
        let fails = |_: &ChaosConfig| false;
        assert_eq!(shrink_with(&cfg, &fails), cfg);
    }
}
