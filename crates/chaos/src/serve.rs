//! Chaos harness for the serve front-end's request lifecycle.
//!
//! The core harness ([`crate::run_config`]) hammers the *tthread*
//! lifecycle; this module applies the same discipline to the *request*
//! lifecycle: a real [`dtt_serve::Server`] on a loopback socket, driven
//! by concurrent client threads while the serve-layer fault points
//! ([`FaultPoint::SERVE`]: conn-drop mid-batch, slow-client stall,
//! accept-queue overflow) fire on a seeded schedule. After every run —
//! under a watchdog, so a wedge is itself a failure — the harness
//! asserts:
//!
//! * **admission conservation** — `accepts == admits + sheds`: every
//!   decoded request was decided exactly once;
//! * **lifecycle conservation** — `accepts == responses + sheds +
//!   dropped_conns`: no request vanished, whatever was injected;
//! * **client/server agreement** — responses the clients observed never
//!   exceed what the server counted;
//! * **no wedge** — the run (including the drain-mode
//!   [`dtt_serve::Server::shutdown`], mid-load when
//!   [`ServeChaosConfig::drain_mid_run`] is set) finishes inside the
//!   watchdog.
//!
//! Failures carry the seed and shrink ([`shrink_serve_with`]) to a
//! minimal armed-point set and request count, mirroring the core
//! harness.

use std::sync::mpsc;
use std::thread;
use std::time::Duration;

use dtt_core::fault::{FaultPlan, FaultPoint, ALWAYS};
use dtt_serve::{Client, Request, Response, ServeConfig, ServeStatsSnapshot, Server};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One serve-chaos case, fully derived from a seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeChaosConfig {
    /// The seed this case was derived from.
    pub seed: u64,
    /// Concurrent client connections.
    pub conns: usize,
    /// Requests each connection attempts.
    pub requests_per_conn: usize,
    /// Admission-gate permits.
    pub max_inflight: usize,
    /// Engine mailbox capacity.
    pub queue_cap: usize,
    /// Event workers sweeping the connection state machines.
    pub event_workers: usize,
    /// Serve the keyed view (`GetKey` shard-row reads) instead of the
    /// sheet's global cells.
    pub keyed: bool,
    /// Per-request deadline.
    pub deadline: Duration,
    /// Serve-layer fault schedule (only [`FaultPoint::SERVE`] points
    /// matter here).
    pub plan: FaultPlan,
    /// Initiate drain-mode shutdown while clients are still sending.
    pub drain_mid_run: bool,
    /// Wall-clock budget; exceeding it is a wedge.
    pub watchdog: Duration,
}

impl ServeChaosConfig {
    /// Derives a randomized case from `seed`: a small gate and mailbox
    /// (so organic shedding happens too), and each serve-layer point
    /// armed about half the time with a finite budget.
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5E12_CAFE);
        let mut plan = FaultPlan::new(seed).with_delay_us(rng.gen_range(1..=200u32));
        for point in FaultPoint::SERVE {
            if rng.gen_range(0..2u32) == 0 {
                plan = plan
                    .with_rate(point, rng.gen_range(6_553..=19_660u16))
                    .with_budget(point, rng.gen_range(2..=16u32));
            }
        }
        ServeChaosConfig {
            seed,
            conns: rng.gen_range(2..=6usize),
            requests_per_conn: rng.gen_range(20..=60usize),
            max_inflight: rng.gen_range(1..=8usize),
            queue_cap: rng.gen_range(1..=8usize),
            event_workers: rng.gen_range(1..=3usize),
            keyed: rng.gen_range(0..3u32) == 0,
            deadline: Duration::from_millis(200),
            plan,
            drain_mid_run: rng.gen_range(0..4u32) == 0,
            watchdog: Duration::from_secs(30),
        }
    }

    /// A quiet baseline case (no serve faults armed).
    pub fn baseline(seed: u64) -> Self {
        ServeChaosConfig {
            seed,
            conns: 4,
            requests_per_conn: 40,
            max_inflight: 4,
            queue_cap: 4,
            event_workers: 2,
            keyed: false,
            deadline: Duration::from_millis(200),
            plan: FaultPlan::new(seed),
            drain_mid_run: false,
            watchdog: Duration::from_secs(30),
        }
    }

    fn describe(&self) -> String {
        let armed: Vec<String> = self
            .plan
            .armed_points()
            .into_iter()
            .map(|p| {
                format!(
                    "{}(rate={},budget={})",
                    p.name(),
                    self.plan.rate(p),
                    self.plan.budget(p)
                )
            })
            .collect();
        format!(
            "conns={} reqs/conn={} inflight={} queue={} ev={} keyed={} drain_mid_run={} armed=[{}]",
            self.conns,
            self.requests_per_conn,
            self.max_inflight,
            self.queue_cap,
            self.event_workers,
            self.keyed,
            self.drain_mid_run,
            armed.join(", ")
        )
    }
}

/// What a successful serve-chaos run observed.
#[derive(Debug, Clone)]
pub struct ServeRunSummary {
    /// The case's seed.
    pub seed: u64,
    /// Final request-lifecycle counters.
    pub stats: ServeStatsSnapshot,
    /// Per-[`FaultPoint`] injected-fault counts (serve probe).
    pub injections: [u64; FaultPoint::COUNT],
    /// Non-shed responses the client threads observed.
    pub client_responses: u64,
    /// `Shed` responses the client threads observed.
    pub client_sheds: u64,
    /// Connections the clients saw severed mid-request.
    pub client_drops: u64,
}

/// A serve-chaos invariant violation, replayable from its seed.
#[derive(Debug, Clone)]
pub struct ServeChaosFailure {
    /// The failing case's seed.
    pub seed: u64,
    /// Which invariant broke, and how.
    pub message: String,
    /// The full failing case (feed to [`shrink_serve_with`]).
    pub config: ServeChaosConfig,
}

impl std::fmt::Display for ServeChaosFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "serve-chaos: seed {} FAILED: {}",
            self.seed, self.message
        )?;
        writeln!(f, "  case: {}", self.config.describe())?;
        write!(
            f,
            "  replay: dtt_chaos::serve::run_serve_config(&ServeChaosConfig::from_seed({}))",
            self.seed
        )
    }
}

impl std::error::Error for ServeChaosFailure {}

/// Runs the case derived from `seed` under its watchdog.
///
/// # Errors
///
/// Returns a [`ServeChaosFailure`] naming the violated invariant.
pub fn run_serve_seed(seed: u64) -> Result<ServeRunSummary, Box<ServeChaosFailure>> {
    run_serve_config(&ServeChaosConfig::from_seed(seed))
}

/// Runs one explicit serve case under its watchdog. A run that does not
/// finish in time is reported as a wedge (the stuck server threads are
/// leaked — the process is already compromised at that point).
///
/// # Errors
///
/// Returns a [`ServeChaosFailure`] naming the violated invariant.
pub fn run_serve_config(cfg: &ServeChaosConfig) -> Result<ServeRunSummary, Box<ServeChaosFailure>> {
    let (tx, rx) = mpsc::channel();
    let inner_cfg = cfg.clone();
    let worker = thread::spawn(move || {
        let _ = tx.send(run_serve_inner(&inner_cfg));
    });
    match rx.recv_timeout(cfg.watchdog) {
        Ok(result) => {
            let _ = worker.join();
            result.map_err(|message| {
                Box::new(ServeChaosFailure {
                    seed: cfg.seed,
                    message,
                    config: cfg.clone(),
                })
            })
        }
        Err(_) => Err(Box::new(ServeChaosFailure {
            seed: cfg.seed,
            message: format!(
                "wedged: the run did not finish within the {:?} watchdog",
                cfg.watchdog
            ),
            config: cfg.clone(),
        })),
    }
}

/// Shrinks a failing serve case to a minimal one that still fails:
/// greedily disarms serve-layer fault points and halves the per-client
/// request count while the failure reproduces, to a fixpoint.
pub fn shrink_serve_with(
    cfg: &ServeChaosConfig,
    fails: &dyn Fn(&ServeChaosConfig) -> bool,
) -> ServeChaosConfig {
    let mut current = cfg.clone();
    loop {
        let mut progressed = false;
        for point in FaultPoint::SERVE {
            if current.plan.rate(point) == 0 {
                continue;
            }
            let mut candidate = current.clone();
            candidate.plan = candidate.plan.clone().with_rate(point, 0);
            if fails(&candidate) {
                current = candidate;
                progressed = true;
            }
        }
        if current.requests_per_conn > 5 {
            let mut candidate = current.clone();
            candidate.requests_per_conn /= 2;
            if fails(&candidate) {
                current = candidate;
                progressed = true;
            }
        }
        if !progressed {
            return current;
        }
    }
}

/// Per-client tally of observed outcomes.
#[derive(Debug, Default)]
struct ClientTally {
    responses: u64,
    sheds: u64,
    drops: u64,
}

/// The actual run: start a server, hammer it from `conns` client
/// threads, optionally drain mid-load, then check every invariant.
fn run_serve_inner(cfg: &ServeChaosConfig) -> Result<ServeRunSummary, String> {
    let mut server = Server::start(ServeConfig {
        max_inflight: cfg.max_inflight,
        queue_cap: cfg.queue_cap,
        event_workers: cfg.event_workers,
        view: if cfg.keyed {
            dtt_serve::ViewKind::Keyed
        } else {
            dtt_serve::ViewKind::Sheet
        },
        deadline: cfg.deadline,
        serve_faults: Some(cfg.plan.clone()),
        ..ServeConfig::default()
    })
    .map_err(|e| format!("server start failed: {e}"))?;
    let addr = server.local_addr().to_string();

    let mut handles = Vec::with_capacity(cfg.conns);
    for t in 0..cfg.conns {
        let addr = addr.clone();
        let requests = cfg.requests_per_conn;
        let seed = cfg.seed ^ (t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let keyed = cfg.keyed;
        handles.push(thread::spawn(move || -> Result<ClientTally, String> {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut tally = ClientTally::default();
            let mut client = match Client::connect(&addr) {
                Ok(c) => Some(c),
                Err(e) => return Err(format!("initial connect failed: {e}")),
            };
            for i in 0..requests {
                let request = match rng.gen_range(0..10u32) {
                    0 => Request::Ping,
                    1..=3 if keyed => Request::GetKey {
                        key: rng.gen_range(0..256u64),
                    },
                    1..=3 => Request::Get {
                        query: rng.gen_range(0..2u8),
                    },
                    _ => Request::Put {
                        key: rng.gen_range(0..256u64),
                        value: i as i64,
                    },
                };
                let c = match client.as_mut() {
                    Some(c) => c,
                    None => match Client::connect(&addr) {
                        Ok(c) => client.insert(c),
                        // Listener gone: the server is draining. Fine.
                        Err(_) => break,
                    },
                };
                match c.request(request) {
                    Ok(Response::Err { code }) => {
                        return Err(format!("server answered Err({code})"))
                    }
                    Ok(Response::Shed) => tally.sheds += 1,
                    Ok(_) => tally.responses += 1,
                    Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                        // Injected conn-drop (or drain): reconnect.
                        tally.drops += 1;
                        client = None;
                    }
                    Err(_) => {
                        // Write-side failure on a severed connection.
                        client = None;
                    }
                }
            }
            Ok(tally)
        }));
    }

    let drained_early = if cfg.drain_mid_run {
        // Let the load ramp, then drain while clients are still sending.
        thread::sleep(Duration::from_millis(20));
        server
            .shutdown(Duration::from_secs(10))
            .map_err(|e| format!("mid-load drain shutdown failed: {e}"))?;
        true
    } else {
        false
    };

    let mut client_responses = 0u64;
    let mut client_sheds = 0u64;
    let mut client_drops = 0u64;
    for handle in handles {
        let tally = handle
            .join()
            .map_err(|_| "client thread panicked".to_string())??;
        client_responses += tally.responses;
        client_sheds += tally.sheds;
        client_drops += tally.drops;
    }
    if !drained_early {
        server
            .shutdown(Duration::from_secs(10))
            .map_err(|e| format!("drain shutdown failed: {e}"))?;
    }
    // Idempotency is part of the lifecycle contract.
    server
        .shutdown(Duration::from_secs(10))
        .map_err(|e| format!("second shutdown not idempotent: {e}"))?;

    let stats = server.stats();
    let injections = server.fault_injections();

    if !stats.admission_conserved() {
        return Err(format!(
            "admission conservation violated: accepts {} != admits {} + sheds {}",
            stats.serve_accepts, stats.serve_admits, stats.serve_sheds
        ));
    }
    if !stats.lifecycle_conserved() {
        return Err(format!(
            "lifecycle conservation violated: accepts {} != responses {} + sheds {} + dropped {}",
            stats.serve_accepts,
            stats.serve_responses,
            stats.serve_sheds,
            stats.serve_dropped_conns
        ));
    }
    // Clients cannot have observed more answers than the server produced,
    // or more severed connections than the server dropped (the reverse
    // can hold: a drain can close a socket the client never re-read, and
    // a response can be produced but never collected). A mid-run drain
    // closes each connection as soon as it is idle, so a closed-loop
    // client can see one EOF per connection that the server never
    // counted — no request of theirs was ever decoded.
    if client_responses > stats.serve_responses {
        return Err(format!(
            "clients observed {client_responses} responses but the server counted {}",
            stats.serve_responses
        ));
    }
    if client_sheds > stats.serve_sheds {
        return Err(format!(
            "clients observed {client_sheds} sheds but the server counted {}",
            stats.serve_sheds
        ));
    }
    let drain_allowance = if cfg.drain_mid_run {
        cfg.conns as u64
    } else {
        0
    };
    if client_drops
        > stats.serve_dropped_conns + injections[FaultPoint::ConnDrop as usize] + drain_allowance
    {
        return Err(format!(
            "clients observed {client_drops} drops but the server dropped {} \
             (+{} injected, +{drain_allowance} drain allowance)",
            stats.serve_dropped_conns,
            injections[FaultPoint::ConnDrop as usize]
        ));
    }

    Ok(ServeRunSummary {
        seed: cfg.seed,
        stats,
        injections,
        client_responses,
        client_sheds,
        client_drops,
    })
}

/// A pinned serve case arming exactly one serve-layer fault point hard
/// enough to be guaranteed to fire (rate [`ALWAYS`], small finite
/// budget). The regression suite pins one per point.
pub fn pinned_serve_case(point: FaultPoint, seed: u64) -> ServeChaosConfig {
    let mut cfg = ServeChaosConfig::baseline(seed);
    cfg.plan = FaultPlan::new(seed)
        .with_rate(point, ALWAYS)
        .with_budget(point, 6)
        .with_delay_us(200);
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_seed_is_deterministic_and_serve_scoped() {
        let a = ServeChaosConfig::from_seed(42);
        let b = ServeChaosConfig::from_seed(42);
        assert_eq!(a, b);
        assert_ne!(a, ServeChaosConfig::from_seed(43));
        for p in a.plan.armed_points() {
            assert!(FaultPoint::SERVE.contains(&p));
            assert_ne!(a.plan.budget(p), dtt_core::fault::UNLIMITED);
        }
    }

    #[test]
    fn baseline_serve_run_is_quiet() {
        let summary = run_serve_config(&ServeChaosConfig::baseline(7)).expect("baseline must pass");
        assert_eq!(summary.injections, [0; FaultPoint::COUNT]);
        assert_eq!(summary.client_drops, 0);
        assert!(summary.client_responses > 0);
    }

    #[test]
    fn serve_shrink_disarms_irrelevant_points_and_halves_requests() {
        let mut cfg = ServeChaosConfig::baseline(1);
        cfg.requests_per_conn = 80;
        for p in FaultPoint::SERVE {
            cfg.plan = cfg.plan.clone().with_rate(p, ALWAYS).with_budget(p, 4);
        }
        let fails = |c: &ServeChaosConfig| {
            c.plan.rate(FaultPoint::ConnDrop) > 0 && c.requests_per_conn >= 20
        };
        let minimal = shrink_serve_with(&cfg, &fails);
        assert_eq!(minimal.plan.armed_points(), vec![FaultPoint::ConnDrop]);
        assert_eq!(minimal.requests_per_conn, 20);
        assert!(fails(&minimal));
    }
}
