//! R-graph — throughput of the dependency-graph subsystem: early cutoff
//! on vs off over the two multi-stage kernels (`spreadsheet`, `pipeline`).
//!
//! Both runs compute bit-identical digests (asserted); the difference is
//! pure recomputation volume. With [`Config::early_cutoff`] disabled a
//! silent commit still invalidates its downstream readers
//! (invalidate-on-write), so every sum-preserving spreadsheet swap and
//! every saturated pipeline store drags the whole chain through a
//! recompute. The `graph-cutoff check` line asserts the spreadsheet
//! executions ratio stays ≥ 1.5×, which CI greps.
//!
//! Usage: `graph_throughput [--smoke]` — `--smoke` runs at train scale.

use std::time::Instant;

use dtt_bench::{fmt_speedup, BenchRecord, Table};
use dtt_core::Config;
use dtt_workloads::{Scale, Workload};

/// Executions ratio the spreadsheet ablation must clear (CI budget).
const CUTOFF_BUDGET: f64 = 1.5;

struct Row {
    name: &'static str,
    execs_on: u64,
    execs_off: u64,
    cascades: u64,
    cutoffs: u64,
    ns_per_step_on: f64,
}

fn run_one(w: &dyn Workload, steps: usize) -> Row {
    let base = w.run_baseline();

    let t0 = Instant::now();
    let on = w.run_dtt(Config::default());
    let on_elapsed = t0.elapsed();
    let off = w.run_dtt(Config::default().with_early_cutoff(false));

    assert_eq!(base, on.digest, "{}: cutoff-on digest mismatch", w.name());
    assert_eq!(base, off.digest, "{}: cutoff-off digest mismatch", w.name());

    let c_on = on.stats.counters();
    let c_off = off.stats.counters();
    assert_eq!(
        c_on.cascades,
        c_on.cascade_enqueues + c_on.cascade_coalesced + c_on.cascade_cutoffs,
        "{}: wave conservation violated",
        w.name()
    );
    Row {
        name: w.name(),
        execs_on: c_on.executions,
        execs_off: c_off.executions,
        cascades: c_on.cascades,
        cutoffs: c_on.cascade_cutoffs,
        ns_per_step_on: on_elapsed.as_secs_f64() * 1e9 / steps as f64,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = if smoke {
        Scale::Train
    } else {
        Scale::Reference
    };

    let spreadsheet = dtt_workloads::Spreadsheet::new(scale);
    let pipeline = dtt_workloads::Pipeline::new(scale);
    let rows = vec![
        run_one(&spreadsheet, spreadsheet.steps()),
        run_one(&pipeline, pipeline.steps()),
    ];

    let mut table = Table::new(vec![
        "benchmark".into(),
        "execs (cutoff on)".into(),
        "execs (cutoff off)".into(),
        "ratio".into(),
        "cascades".into(),
        "cutoffs".into(),
        "ns/step".into(),
    ]);
    for r in &rows {
        table.row(vec![
            r.name.into(),
            r.execs_on.to_string(),
            r.execs_off.to_string(),
            fmt_speedup(r.execs_off as f64 / r.execs_on as f64),
            r.cascades.to_string(),
            r.cutoffs.to_string(),
            format!("{:.0}", r.ns_per_step_on),
        ]);
    }
    let mode = if smoke { ", smoke" } else { "" };
    table.print(&format!(
        "R-graph: early cutoff on vs off (equal digests{mode})"
    ));

    let sheet = &rows[0];
    let ratio = sheet.execs_off as f64 / sheet.execs_on as f64;
    assert!(
        ratio >= CUTOFF_BUDGET,
        "graph-cutoff check: FAIL (spreadsheet ratio {ratio:.2} < {CUTOFF_BUDGET})"
    );
    println!(
        "graph-cutoff check: PASS (spreadsheet execs {} -> {} without cutoff, \
         ratio {ratio:.2} >= {CUTOFF_BUDGET})",
        sheet.execs_on, sheet.execs_off
    );

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let record = BenchRecord {
        benchmark: "graph".into(),
        config: format!("spreadsheet+pipeline cutoff on-vs-off scale={scale}"),
        ns_per_op: sheet.ns_per_step_on,
        modeled_speedup: ratio,
        host_cores: cores,
    };
    match record.write() {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write bench record: {e}"),
    }
}
