//! Extension experiment (R-Fig.13): memory-latency sensitivity. DTT
//! removes loads along with instructions, so its advantage should grow on
//! machines with slower memory — the trend that made the technique
//! attractive as the memory wall steepened.

use dtt_bench::{fmt_speedup, geomean, run_pair, suite_with_traces, Table, EXPERIMENT_SCALE};
use dtt_sim::MachineConfig;

fn main() {
    let sweeps: [u64; 5] = [50, 100, 200, 400, 800];
    let traces = suite_with_traces(EXPERIMENT_SCALE);
    let mut table = Table::new(
        std::iter::once("benchmark".to_string())
            .chain(sweeps.iter().map(|l| format!("{l} cyc mem")))
            .collect(),
    );
    let mut per_sweep: Vec<Vec<f64>> = vec![Vec::new(); sweeps.len()];
    for (w, trace) in &traces {
        let mut row = vec![w.name().to_string()];
        for (i, &lat) in sweeps.iter().enumerate() {
            let mut cfg = MachineConfig::default();
            cfg.hierarchy.memory_latency = lat;
            let (base, dtt) = run_pair(&cfg, trace);
            let s = base.speedup_over(&dtt);
            per_sweep[i].push(s);
            row.push(fmt_speedup(s));
        }
        table.row(row);
    }
    let mut geo = vec!["geomean".to_string()];
    for col in &per_sweep {
        geo.push(fmt_speedup(geomean(col)));
    }
    table.row(geo);
    table.print("R-Fig.13 (extension): speedup vs memory latency");
}
