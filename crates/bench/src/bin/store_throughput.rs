//! Multi-threaded tracked-store throughput: the sharded hot path vs the
//! single-lock (`mem_shards = 1`) serialized ablation.
//!
//! Each thread owns an [`dtt_core::Accessor`] and hammers changing stores
//! into a disjoint chunk of one unwatched array — the pure store fast path
//! (stripe lock + shadow compare + trigger read-lookup, no state lock).
//! With `mem_shards = 1` every store from every thread serializes on the
//! single stripe lock — the ablation for the pre-sharding runtime, whose
//! global state lock covered the *entire* tracked-store path; with enough
//! shards the chunks map to disjoint stripe locks and threads never touch
//! shared mutable state on the store path.
//!
//! Two results are reported:
//!
//! * the **measured** wall-clock table — on a multi-core host the 4-thread
//!   sharded row shows the real scaling; on a single-core host all
//!   configurations collapse to one thread's throughput (time-slicing
//!   serializes everything, so the locking scheme cannot matter);
//! * a **modeled** multi-core projection from measured single-thread
//!   per-store cost: a lock held for the whole store path caps aggregate
//!   throughput at `1 / t_store` no matter the thread count, while disjoint
//!   shards scale at `T / t_store` — the standard serialization bound, with
//!   both `t_store` values measured, not assumed.
//!
//! A second experiment sweeps the *bulk* store path: repeated
//! `write_slice` passes over one array where only every 64th element
//! changes per pass (the mostly-silent regime silent-store suppression is
//! built for), with the vectorized 64-byte-line change detector on vs the
//! scalar word walk (`Config::simd_store`). The budget line
//! `store-path budget check: PASS` asserts the vectorized path is at
//! least 15% cheaper per store (full run; the smoke run only asserts it
//! is not slower, since CI timings are unreliable).
//!
//! Usage: `store_throughput [--smoke]` — `--smoke` runs a fast CI-sized
//! configuration (same code paths, unreliable timings).

use std::sync::Barrier;
use std::time::Instant;

use dtt_bench::{fmt_speedup, BenchRecord, Table};
use dtt_core::{Config, Runtime};

/// Elements per thread; 512 u64s = 4 KiB = 64 stripes per chunk, so chunks
/// land on disjoint stripe locks whenever the shard count covers
/// `threads * 64` stripes.
const CHUNK: usize = 512;

/// Shard count for the sharded configurations: enough that each of 4
/// threads' 64 stripes get private locks. (The `Config` default scales
/// with the host core count and can be smaller on small boxes.)
const SHARDS: usize = 256;

/// Runs `threads` accessor threads of `iters` changing stores each over
/// disjoint chunks and returns aggregate Mstores/s.
fn run(threads: usize, shards: usize, iters: usize) -> f64 {
    let cfg = Config::default().with_mem_shards(shards);
    let mut rt = Runtime::new(cfg, ());
    let xs = rt.alloc_array::<u64>(threads * CHUNK).unwrap();
    let start_gate = Barrier::new(threads + 1);
    let done_gate = Barrier::new(threads + 1);
    let mut secs = 0.0;
    std::thread::scope(|s| {
        let rt = &rt;
        let (start_gate, done_gate) = (&start_gate, &done_gate);
        for t in 0..threads {
            s.spawn(move || {
                let mut acc = rt.accessor();
                let chunk = xs.slice(t * CHUNK, (t + 1) * CHUNK);
                start_gate.wait();
                // Every store changes its cell (cell i sees i+1, CHUNK+i+1,
                // ...), so none are silent-suppressed.
                for i in 0..iters {
                    acc.write(chunk, i % CHUNK, (i + 1) as u64);
                }
                done_gate.wait();
            });
        }
        start_gate.wait();
        let t0 = Instant::now();
        done_gate.wait();
        secs = t0.elapsed().as_secs_f64();
    });
    let c = rt.stats();
    let expect = (threads * iters) as u64;
    assert_eq!(
        c.counters().tracked_stores,
        expect,
        "lost stores at {threads} threads / {shards} shards"
    );
    assert_eq!(c.counters().silent_stores, 0);
    (threads * iters) as f64 / secs / 1e6
}

/// Elements in the bulk-sweep array: 8192 u64s = 64 KiB = 1024 cache
/// lines, far past any per-call constant costs.
const SWEEP_ELEMS: usize = 8192;

/// One element in `SWEEP_PERIOD` changes per sweep pass; the rest are
/// silent. One change per 8 lines keeps 7 of 8 lines on the all-silent
/// fast path, the regime the vectorized detector targets.
const SWEEP_PERIOD: usize = 64;

/// Runs `rounds` mostly-silent `write_slice` passes with the vectorized
/// detector on or off and returns the best-of-`reps` ns per element
/// store. Asserts both configurations detect the identical change set,
/// so the speed comparison is at equal trigger precision.
fn sweep(simd: bool, rounds: usize, reps: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let cfg = Config::default().with_simd_store(simd);
        let mut rt = Runtime::new(cfg, ());
        let xs = rt.alloc_array::<u64>(SWEEP_ELEMS).unwrap();
        let mut values = vec![0u64; SWEEP_ELEMS];
        let t0 = Instant::now();
        for r in 1..=rounds {
            for v in values.iter_mut().step_by(SWEEP_PERIOD) {
                *v = r as u64;
            }
            rt.with(|ctx| ctx.write_slice(xs, 0, &values));
        }
        let secs = t0.elapsed().as_secs_f64();
        let total = (rounds * SWEEP_ELEMS) as u64;
        let changed = (rounds * SWEEP_ELEMS.div_ceil(SWEEP_PERIOD)) as u64;
        let c = rt.stats();
        assert_eq!(c.counters().tracked_stores, total);
        assert_eq!(
            c.counters().changing_stores,
            changed,
            "simd={simd} missed or invented changes"
        );
        assert_eq!(c.counters().silent_stores, total - changed);
        best = best.min(secs * 1e9 / total as f64);
    }
    best
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let iters = if smoke { 20_000 } else { 2_000_000 };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let mut table = Table::new(vec![
        "threads".into(),
        "shards=1 Mst/s".into(),
        format!("shards={SHARDS} Mst/s"),
        "speedup".into(),
    ]);
    let mut measured_1t_sharded = 0.0;
    let mut measured_1t_serial = 0.0;
    let mut measured_4t_ratio = 0.0;
    for threads in [1usize, 2, 4] {
        let serialized = run(threads, 1, iters);
        let sharded = run(threads, SHARDS, iters);
        if threads == 1 {
            measured_1t_serial = serialized;
            measured_1t_sharded = sharded;
        }
        if threads == 4 {
            measured_4t_ratio = sharded / serialized;
        }
        table.row(vec![
            threads.to_string(),
            format!("{serialized:.1}"),
            format!("{sharded:.1}"),
            fmt_speedup(sharded / serialized),
        ]);
    }
    let mode = if smoke { " (smoke)" } else { "" };
    table.print(&format!(
        "store throughput, measured on {cores} core(s): sharded vs single-lock{mode}"
    ));

    // Serialization model from the measured single-thread costs: a lock held
    // across the store path caps aggregate throughput at 1/t_store however
    // many threads run (the pre-sharding global lock covered the whole
    // path), while stores on disjoint shards share no lock and scale with
    // the core count.
    let modeled = 4.0 * measured_1t_sharded / measured_1t_serial;
    println!(
        "single-thread cost: {:.1} ns/store under the single lock, {:.1} ns/store sharded",
        1e3 / measured_1t_serial,
        1e3 / measured_1t_sharded
    );
    println!(
        "modeled 4-core, 4-thread speedup over the single-lock baseline: {}",
        fmt_speedup(modeled)
    );
    println!(
        "measured 4-thread speedup on this {cores}-core host: {}",
        fmt_speedup(measured_4t_ratio)
    );
    if cores < 4 {
        println!("note: with fewer cores than threads, time-slicing serializes every");
        println!("configuration equally, so the measured column cannot separate them;");
        println!("the modeled line is the serialization bound from measured costs.");
    }

    // Bulk mostly-silent sweep: vectorized vs scalar change detection.
    let (rounds, reps) = if smoke { (40, 3) } else { (2_000, 2) };
    let ns_scalar = sweep(false, rounds, reps);
    let ns_simd = sweep(true, rounds, reps);
    let gain = ns_scalar / ns_simd;
    let mut sweep_table = Table::new(vec!["detector".into(), "ns/store".into(), "speedup".into()]);
    sweep_table.row(vec![
        "scalar".into(),
        format!("{ns_scalar:.2}"),
        "1.00x".into(),
    ]);
    sweep_table.row(vec![
        "simd".into(),
        format!("{ns_simd:.2}"),
        fmt_speedup(gain),
    ]);
    sweep_table.print(&format!(
        "bulk write_slice, 1 change per {SWEEP_PERIOD} u64s, \
         {SWEEP_ELEMS} elems x {rounds} rounds{mode}"
    ));
    // Full runs must show the >= 15% per-store saving; the smoke run only
    // guards against the vectorized path regressing below the scalar one
    // (CI boxes are too noisy for a tight bound).
    let budget = if smoke { 1.00 } else { 1.15 };
    let verdict = if gain >= budget { "PASS" } else { "FAIL" };
    println!(
        "store-path budget check: {verdict} (simd {gain:.2}x over scalar, budget {budget:.2}x)"
    );

    let record = BenchRecord {
        benchmark: "store_throughput".into(),
        config: format!(
            "threads=[1,2,4] shards={SHARDS}-vs-1 iters={iters} \
             sweep-ns-scalar={ns_scalar:.2} sweep-ns-simd={ns_simd:.2}{mode}"
        ),
        ns_per_op: ns_simd,
        modeled_speedup: modeled,
        host_cores: cores,
    };
    match record.write() {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write bench record: {e}"),
    }
}
