//! Open-loop serve throughput: the front-end under sustainable load,
//! over the keyed store, at a thousand held connections, and under
//! deliberate ≥2× overload.
//!
//! Four phases; the rate-driven ones use the coordinated-omission-safe
//! open-loop generator (`dtt_serve::load`: latency measured from
//! *scheduled* send instants, so time a request queues behind a slow
//! server counts against the server):
//!
//! 1. **Baseline** — a generously gated server at a modest target rate.
//!    Its achieved response throughput is the measured sustainable rate;
//!    its p50/p99 come from the obs crate's log2 histograms.
//! 2. **Keyed** — the same load shape over the keyed store
//!    (`ViewKind::Keyed`): writes and `GetKey` shard-row reads over a
//!    2^20 logical key space folded onto the tthread-maintained grid.
//! 3. **Connection scale** — ≥1024 connections held open concurrently
//!    against the event-driven path, driven round-robin by a *bounded*
//!    set of client threads. The pass criterion is the rewrite's core
//!    claim: the server's OS thread count does not move with the
//!    connection count (the old thread-per-connection path added one
//!    thread and one parked `JoinHandle` per connection).
//! 4. **Overload** — a *tightly* gated server (the gate is the capacity
//!    under test) driven at at least twice the measured sustainable
//!    rate. The pass criteria are the paper-style robustness claims:
//!    the server **sheds instead of collapsing** — explicit `Shed`
//!    responses appear, the answer rate holds up, p99 stays inside the
//!    budget (sheds are cheap; admitted requests are bounded by the
//!    per-request deadline) — and the request-conservation identities
//!    hold exactly (`accepts == admits + sheds`,
//!    `accepts == responses + sheds + dropped_conns`: zero requests
//!    lost).
//!
//! The `serve-overload check: PASS` and `serve-scale check: PASS` lines
//! are printed only when every budget holds; the CI serve job greps for
//! them. Results land in `BENCH_serve.json` (one row per phase with
//! p50/p99 and throughput; the overload phase stays last — CI reads it
//! as `rows[-1]`).
//!
//! Usage: `serve_throughput [--smoke]` — `--smoke` runs a fast CI-sized
//! configuration (same code paths, shorter runs).

use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use dtt_obs::LogHistogram;
use dtt_serve::{load, Client, LoadConfig, LoadReport, Request, ServeConfig, Server, ViewKind};

/// p99 budget for the overload phase, in milliseconds. Admitted requests
/// are bounded by the 50 ms per-request deadline and sheds are answered
/// without an engine round trip, so even heavily overloaded runs must
/// stay far below this; only collapse (unbounded queueing) breaks it.
const OVERLOAD_P99_BUDGET_MS: u64 = 400;

/// Connections the scale phase holds concurrently.
const SCALE_CONNS: usize = 1024;

/// Client threads driving the scale phase (16 connections each).
const SCALE_CLIENT_THREADS: usize = 64;

/// One measured phase, for the report and the JSON record.
struct Phase {
    name: &'static str,
    config: String,
    report: LoadReport,
    sheds_ok: bool,
}

fn run_phase(
    name: &'static str,
    serve_cfg: ServeConfig,
    load_cfg: LoadConfig,
) -> (Phase, dtt_serve::ServeStatsSnapshot) {
    let config = format!(
        "inflight={} queue={} conns={} rate={}/s dur={:?}{}",
        serve_cfg.max_inflight,
        serve_cfg.queue_cap,
        load_cfg.conns,
        load_cfg.rate,
        load_cfg.duration,
        if load_cfg.keyed { " keyed" } else { "" }
    );
    let mut server = Server::start(serve_cfg).expect("bind loopback server");
    let mut load_cfg = load_cfg;
    load_cfg.addr = server.local_addr().to_string();
    let report = load::run(&load_cfg).expect("load run");
    server
        .shutdown(Duration::from_secs(30))
        .expect("drain shutdown after load");
    let stats = server.stats();

    // The conservation identities are hard assertions on every phase:
    // an overloaded front-end may shed, it may never lose a request.
    assert!(
        stats.admission_conserved(),
        "{name}: accepts != admits + sheds: {stats:?}"
    );
    assert!(
        stats.lifecycle_conserved(),
        "{name}: accepts != responses + sheds + dropped_conns: {stats:?}"
    );

    (
        Phase {
            name,
            config,
            report,
            sheds_ok: stats.serve_sheds > 0,
        },
        stats,
    )
}

/// OS threads of this process, from /proc/self/status (Linux CI; falls
/// back to 0 elsewhere, which disables the thread-bound assertion).
fn thread_count() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find_map(|l| l.strip_prefix("Threads:"))
                .and_then(|v| v.trim().parse().ok())
        })
        .unwrap_or(0)
}

/// The connection-scale phase: hold [`SCALE_CONNS`] connections open
/// from [`SCALE_CLIENT_THREADS`] client threads, drive a few round-robin
/// request rounds over every connection, and assert the server's OS
/// thread count never scales with the connection count.
fn run_conn_scale(rounds: u64) -> (Phase, dtt_serve::ServeStatsSnapshot) {
    let event_workers = 2;
    let mut server = Server::start(ServeConfig {
        max_inflight: 256,
        queue_cap: 512,
        deadline: Duration::from_millis(50),
        event_workers,
        ..ServeConfig::default()
    })
    .expect("bind loopback server");
    let addr = server.local_addr().to_string();
    // Baseline after the server is fully up: pool + accept + engine +
    // runtime workers are all running, so any later growth would be
    // per-connection.
    let threads_at_start = thread_count();

    let conns_per_thread = SCALE_CONNS / SCALE_CLIENT_THREADS;
    let connected = Arc::new(Barrier::new(SCALE_CLIENT_THREADS + 1));
    let measured = Arc::new(Barrier::new(SCALE_CLIENT_THREADS + 1));
    let start = Instant::now();
    let mut handles = Vec::with_capacity(SCALE_CLIENT_THREADS);
    for t in 0..SCALE_CLIENT_THREADS {
        let addr = addr.clone();
        let connected = Arc::clone(&connected);
        let measured = Arc::clone(&measured);
        handles.push(std::thread::spawn(move || {
            let mut clients: Vec<Client> = (0..conns_per_thread)
                .map(|_| Client::connect(&addr).expect("scale-phase connect"))
                .collect();
            connected.wait();
            measured.wait();
            let mut tally = (0u64, 0u64, 0u64, LogHistogram::new()); // ok, shed, degraded
            for round in 0..rounds {
                for (c, client) in clients.iter_mut().enumerate() {
                    let key = (t * conns_per_thread + c) as u64;
                    let request = if round % 2 == 0 {
                        Request::Put {
                            key,
                            value: round as i64,
                        }
                    } else {
                        Request::Get {
                            query: (key % 2) as u8,
                        }
                    };
                    let sent = Instant::now();
                    match client.request(request).expect("scale-phase request") {
                        dtt_serve::Response::Shed => tally.1 += 1,
                        dtt_serve::Response::Ok { degraded: true }
                        | dtt_serve::Response::Value { degraded: true, .. } => tally.2 += 1,
                        _ => tally.0 += 1,
                    }
                    tally
                        .3
                        .record(u64::try_from(sent.elapsed().as_nanos()).unwrap_or(u64::MAX));
                }
            }
            tally
        }));
    }

    // All clients connected: wait for every socket to be registered with
    // an event worker, then measure the thread count at peak.
    connected.wait();
    let registration_deadline = Instant::now() + Duration::from_secs(30);
    while server.active_conn_count() < SCALE_CONNS {
        assert!(
            Instant::now() < registration_deadline,
            "registration stalled at {} of {SCALE_CONNS} connections",
            server.active_conn_count()
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    let threads_at_peak = thread_count();
    measured.wait();

    let mut report = LoadReport {
        sent: 0,
        ok: 0,
        shed: 0,
        degraded: 0,
        dropped: 0,
        errors: 0,
        latency: LogHistogram::new(),
        elapsed: Duration::ZERO,
    };
    for handle in handles {
        let (ok, shed, degraded, latency) = handle.join().expect("scale client thread");
        report.ok += ok;
        report.shed += shed;
        report.degraded += degraded;
        report.sent += ok + shed + degraded;
        report.latency.merge(&latency);
    }
    report.elapsed = start.elapsed();

    server
        .shutdown(Duration::from_secs(30))
        .expect("drain shutdown after scale phase");
    let stats = server.stats();
    assert!(
        stats.admission_conserved() && stats.lifecycle_conserved(),
        "conn-scale: conservation violated: {stats:?}"
    );
    assert_eq!(
        stats.serve_accepts,
        SCALE_CONNS as u64 * rounds,
        "every scale-phase request decoded exactly once"
    );

    // The tentpole claim: OS threads are bounded by the worker pool, not
    // the connection count. Everything added between server-up and peak
    // is the client threads themselves (plus measurement slack); the old
    // path would show ~SCALE_CONNS extra.
    let grown = threads_at_peak.saturating_sub(threads_at_start);
    if threads_at_start > 0 {
        assert!(
            grown <= SCALE_CLIENT_THREADS + 8,
            "serve-scale: {SCALE_CONNS} held connections grew OS threads by {grown} \
             (client threads account for {SCALE_CLIENT_THREADS}); \
             the event pool must not scale with connections"
        );
    }
    println!(
        "serve-scale check: PASS ({SCALE_CONNS} conns held on {event_workers} event workers, \
         os-threads +{grown} with {SCALE_CLIENT_THREADS} client threads, \
         accepts {} == responses {} + sheds {} + dropped {})",
        stats.serve_accepts, stats.serve_responses, stats.serve_sheds, stats.serve_dropped_conns
    );

    (
        Phase {
            name: "conn-scale",
            config: format!(
                "conns={SCALE_CONNS} ev={event_workers} rounds={rounds} threads_delta={grown}"
            ),
            report,
            sheds_ok: true,
        },
        stats,
    )
}

fn print_phase(phase: &Phase) {
    let r = &phase.report;
    println!(
        "{:>10}: sent {:>6} | answered {:>6} ({} ok, {} shed, {} degraded, {} dropped) \
         | {:>8.0} resp/s | p50 {:>7.2} ms | p99 {:>7.2} ms",
        phase.name,
        r.sent,
        r.ok + r.shed + r.degraded,
        r.ok,
        r.shed,
        r.degraded,
        r.dropped,
        r.response_throughput(),
        r.latency_ns(0.50) as f64 / 1e6,
        r.latency_ns(0.99) as f64 / 1e6,
    );
}

fn json_row(phase: &Phase) -> String {
    let r = &phase.report;
    format!(
        "{{\"config\":\"{}: {}\",\"p50_us\":{:.1},\"p99_us\":{:.1},\
         \"throughput_rps\":{:.1},\"sent\":{},\"ok\":{},\"sheds\":{},\"degraded\":{}}}",
        phase.name,
        phase.config,
        r.latency_ns(0.50) as f64 / 1e3,
        r.latency_ns(0.99) as f64 / 1e3,
        r.response_throughput(),
        r.sent,
        r.ok,
        r.shed,
        r.degraded
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let (baseline_rate, duration, conns, scale_rounds) = if smoke {
        (1_500u64, Duration::from_millis(400), 4usize, 2u64)
    } else {
        (4_000, Duration::from_secs(2), 8, 8)
    };

    // Phase 1: sustainable load against a generous gate. The achieved
    // response throughput is the measured sustainable rate.
    let (baseline, _) = run_phase(
        "baseline",
        ServeConfig {
            max_inflight: 64,
            queue_cap: 128,
            deadline: Duration::from_millis(50),
            ..ServeConfig::default()
        },
        LoadConfig {
            conns,
            rate: baseline_rate,
            duration,
            ..LoadConfig::default()
        },
    );
    let sustainable = baseline.report.response_throughput();

    // Phase 2: the same load shape over the keyed store — writes and
    // shard-row reads across a 2^20 logical key space.
    let (keyed, _) = run_phase(
        "keyed",
        ServeConfig {
            max_inflight: 64,
            queue_cap: 128,
            deadline: Duration::from_millis(50),
            view: ViewKind::Keyed,
            dims: (64, 64),
            key_space: 1 << 20,
            ..ServeConfig::default()
        },
        LoadConfig {
            conns,
            rate: baseline_rate,
            duration,
            key_space: 1 << 20,
            keyed: true,
            ..LoadConfig::default()
        },
    );

    // Phase 3: >= 1024 held connections; thread count must not move.
    let (scale, _) = run_conn_scale(scale_rounds);

    // Phase 4: a tightly gated server — its capacity is *at most* the
    // baseline's — driven at twice the measured sustainable rate, from
    // more connections than the gate has permits so concurrent arrivals
    // genuinely exceed admission.
    let overload_rate = (2.0 * sustainable).ceil().max(2.0 * baseline_rate as f64) as u64;
    let (overload, overload_stats) = run_phase(
        "overload",
        ServeConfig {
            max_inflight: 4,
            queue_cap: 4,
            deadline: Duration::from_millis(50),
            ..ServeConfig::default()
        },
        LoadConfig {
            conns: conns * 4,
            rate: overload_rate,
            duration,
            ..LoadConfig::default()
        },
    );

    println!(
        "serve throughput, measured on {cores} core(s){}",
        if smoke { " (smoke)" } else { "" }
    );
    print_phase(&baseline);
    print_phase(&keyed);
    print_phase(&scale);
    print_phase(&overload);
    println!(
        "sustainable {:.0} resp/s; overload driven at {} req/s (>= 2x)",
        sustainable, overload_rate
    );

    // The robustness budgets: shed, don't collapse.
    let p99_ms = overload.report.latency_ns(0.99) / 1_000_000;
    let answered = overload.report.ok + overload.report.shed + overload.report.degraded;
    assert!(
        overload.sheds_ok,
        "an overloaded tight gate must shed explicitly (0 sheds recorded)"
    );
    assert!(
        p99_ms <= OVERLOAD_P99_BUDGET_MS,
        "overload p99 {p99_ms} ms blew the {OVERLOAD_P99_BUDGET_MS} ms budget: \
         the server queued instead of shedding"
    );
    assert!(
        answered * 2 >= overload.report.sent,
        "the server collapsed under overload: only {answered} of {} requests answered",
        overload.report.sent
    );
    println!(
        "serve-overload check: PASS (sheds {}, p99 {} ms <= {} ms, {} of {} answered, \
         accepts {} == admits {} + sheds {})",
        overload.report.shed,
        p99_ms,
        OVERLOAD_P99_BUDGET_MS,
        answered,
        overload.report.sent,
        overload_stats.serve_accepts,
        overload_stats.serve_admits,
        overload_stats.serve_sheds
    );

    // One record, one row per phase — same BENCH_*.json artifact shape
    // the other bins ship, with latency quantiles instead of ns_per_op.
    // Overload stays last: CI reads it as rows[-1].
    let json = format!(
        "{{\"benchmark\":\"serve\",\"host_cores\":{cores},\"rows\":[{},{},{},{}]}}\n",
        json_row(&baseline),
        json_row(&keyed),
        json_row(&scale),
        json_row(&overload)
    );
    match std::fs::write("BENCH_serve.json", json) {
        Ok(()) => println!("wrote BENCH_serve.json"),
        Err(e) => eprintln!("could not write bench record: {e}"),
    }
}
