//! Open-loop serve throughput: the front-end under sustainable load and
//! under deliberate ≥2× overload.
//!
//! Two phases, both driven by the coordinated-omission-safe open-loop
//! generator (`dtt_serve::load`: latency measured from *scheduled* send
//! instants, so time a request queues behind a slow server counts
//! against the server):
//!
//! 1. **Baseline** — a generously gated server at a modest target rate.
//!    Its achieved response throughput is the measured sustainable rate;
//!    its p50/p99 come from the obs crate's log2 histograms.
//! 2. **Overload** — a *tightly* gated server (the gate is the capacity
//!    under test) driven at at least twice the measured sustainable
//!    rate. The pass criteria are the paper-style robustness claims:
//!    the server **sheds instead of collapsing** — explicit `Shed`
//!    responses appear, the answer rate holds up, p99 stays inside the
//!    budget (sheds are cheap; admitted requests are bounded by the
//!    per-request deadline) — and the request-conservation identities
//!    hold exactly (`accepts == admits + sheds`,
//!    `accepts == responses + sheds + dropped_conns`: zero requests
//!    lost).
//!
//! The `serve-overload check: PASS` line is printed only when every
//! budget holds; the CI serve job greps for it. Results land in
//! `BENCH_serve.json` (one row per phase with p50/p99 and throughput).
//!
//! Usage: `serve_throughput [--smoke]` — `--smoke` runs a fast CI-sized
//! configuration (same code paths, shorter runs).

use std::time::Duration;

use dtt_serve::{load, LoadConfig, LoadReport, ServeConfig, Server};

/// p99 budget for the overload phase, in milliseconds. Admitted requests
/// are bounded by the 50 ms per-request deadline and sheds are answered
/// without an engine round trip, so even heavily overloaded runs must
/// stay far below this; only collapse (unbounded queueing) breaks it.
const OVERLOAD_P99_BUDGET_MS: u64 = 400;

/// One measured phase, for the report and the JSON record.
struct Phase {
    name: &'static str,
    config: String,
    report: LoadReport,
    sheds_ok: bool,
}

fn run_phase(
    name: &'static str,
    serve_cfg: ServeConfig,
    load_cfg: LoadConfig,
) -> (Phase, dtt_serve::ServeStatsSnapshot) {
    let config = format!(
        "inflight={} queue={} conns={} rate={}/s dur={:?}",
        serve_cfg.max_inflight,
        serve_cfg.queue_cap,
        load_cfg.conns,
        load_cfg.rate,
        load_cfg.duration
    );
    let mut server = Server::start(serve_cfg).expect("bind loopback server");
    let mut load_cfg = load_cfg;
    load_cfg.addr = server.local_addr().to_string();
    let report = load::run(&load_cfg).expect("load run");
    server
        .shutdown(Duration::from_secs(30))
        .expect("drain shutdown after load");
    let stats = server.stats();

    // The conservation identities are hard assertions on every phase:
    // an overloaded front-end may shed, it may never lose a request.
    assert!(
        stats.admission_conserved(),
        "{name}: accepts != admits + sheds: {stats:?}"
    );
    assert!(
        stats.lifecycle_conserved(),
        "{name}: accepts != responses + sheds + dropped_conns: {stats:?}"
    );

    (
        Phase {
            name,
            config,
            report,
            sheds_ok: stats.serve_sheds > 0,
        },
        stats,
    )
}

fn print_phase(phase: &Phase) {
    let r = &phase.report;
    println!(
        "{:>9}: sent {:>6} | answered {:>6} ({} ok, {} shed, {} degraded, {} dropped) \
         | {:>8.0} resp/s | p50 {:>7.2} ms | p99 {:>7.2} ms",
        phase.name,
        r.sent,
        r.ok + r.shed + r.degraded,
        r.ok,
        r.shed,
        r.degraded,
        r.dropped,
        r.response_throughput(),
        r.latency_ns(0.50) as f64 / 1e6,
        r.latency_ns(0.99) as f64 / 1e6,
    );
}

fn json_row(phase: &Phase) -> String {
    let r = &phase.report;
    format!(
        "{{\"config\":\"{}: {}\",\"p50_us\":{:.1},\"p99_us\":{:.1},\
         \"throughput_rps\":{:.1},\"sent\":{},\"ok\":{},\"sheds\":{},\"degraded\":{}}}",
        phase.name,
        phase.config,
        r.latency_ns(0.50) as f64 / 1e3,
        r.latency_ns(0.99) as f64 / 1e3,
        r.response_throughput(),
        r.sent,
        r.ok,
        r.shed,
        r.degraded
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let (baseline_rate, duration, conns) = if smoke {
        (1_500u64, Duration::from_millis(400), 4usize)
    } else {
        (4_000, Duration::from_secs(2), 8)
    };

    // Phase 1: sustainable load against a generous gate. The achieved
    // response throughput is the measured sustainable rate.
    let (baseline, _) = run_phase(
        "baseline",
        ServeConfig {
            max_inflight: 64,
            queue_cap: 128,
            deadline: Duration::from_millis(50),
            ..ServeConfig::default()
        },
        LoadConfig {
            conns,
            rate: baseline_rate,
            duration,
            ..LoadConfig::default()
        },
    );
    let sustainable = baseline.report.response_throughput();

    // Phase 2: a tightly gated server — its capacity is *at most* the
    // baseline's — driven at twice the measured sustainable rate, from
    // more connections than the gate has permits so concurrent arrivals
    // genuinely exceed admission.
    let overload_rate = (2.0 * sustainable).ceil().max(2.0 * baseline_rate as f64) as u64;
    let (overload, overload_stats) = run_phase(
        "overload",
        ServeConfig {
            max_inflight: 4,
            queue_cap: 4,
            deadline: Duration::from_millis(50),
            ..ServeConfig::default()
        },
        LoadConfig {
            conns: conns * 4,
            rate: overload_rate,
            duration,
            ..LoadConfig::default()
        },
    );

    println!(
        "serve throughput, measured on {cores} core(s){}",
        if smoke { " (smoke)" } else { "" }
    );
    print_phase(&baseline);
    print_phase(&overload);
    println!(
        "sustainable {:.0} resp/s; overload driven at {} req/s (>= 2x)",
        sustainable, overload_rate
    );

    // The robustness budgets: shed, don't collapse.
    let p99_ms = overload.report.latency_ns(0.99) / 1_000_000;
    let answered = overload.report.ok + overload.report.shed + overload.report.degraded;
    assert!(
        overload.sheds_ok,
        "an overloaded tight gate must shed explicitly (0 sheds recorded)"
    );
    assert!(
        p99_ms <= OVERLOAD_P99_BUDGET_MS,
        "overload p99 {p99_ms} ms blew the {OVERLOAD_P99_BUDGET_MS} ms budget: \
         the server queued instead of shedding"
    );
    assert!(
        answered * 2 >= overload.report.sent,
        "the server collapsed under overload: only {answered} of {} requests answered",
        overload.report.sent
    );
    println!(
        "serve-overload check: PASS (sheds {}, p99 {} ms <= {} ms, {} of {} answered, \
         accepts {} == admits {} + sheds {})",
        overload.report.shed,
        p99_ms,
        OVERLOAD_P99_BUDGET_MS,
        answered,
        overload.report.sent,
        overload_stats.serve_accepts,
        overload_stats.serve_admits,
        overload_stats.serve_sheds
    );

    // One record, one row per phase — same BENCH_*.json artifact shape
    // the other bins ship, with latency quantiles instead of ns_per_op.
    let json = format!(
        "{{\"benchmark\":\"serve\",\"host_cores\":{cores},\"rows\":[{},{}]}}\n",
        json_row(&baseline),
        json_row(&overload)
    );
    match std::fs::write("BENCH_serve.json", json) {
        Ok(()) => println!("wrote BENCH_serve.json"),
        Err(e) => eprintln!("could not write bench record: {e}"),
    }
}
