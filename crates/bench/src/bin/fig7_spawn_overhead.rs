//! R-Fig.7 — sensitivity to the tthread spawn overhead: geomean DTT
//! speedup as the trigger-to-start latency grows from free to 10k cycles.

use dtt_bench::{fmt_speedup, geomean, run_pair, suite_with_traces, Table, EXPERIMENT_SCALE};
use dtt_sim::MachineConfig;

fn main() {
    let sweeps: [u64; 5] = [0, 10, 100, 1_000, 10_000];
    let traces = suite_with_traces(EXPERIMENT_SCALE);
    let mut table = Table::new(
        std::iter::once("benchmark".to_string())
            .chain(sweeps.iter().map(|s| format!("{s} cyc")))
            .collect(),
    );
    let mut per_sweep: Vec<Vec<f64>> = vec![Vec::new(); sweeps.len()];
    for (w, trace) in &traces {
        let mut row = vec![w.name().to_string()];
        for (i, &spawn) in sweeps.iter().enumerate() {
            let cfg = MachineConfig::default().with_spawn_overhead(spawn);
            let (base, dtt) = run_pair(&cfg, trace);
            let s = base.speedup_over(&dtt);
            per_sweep[i].push(s);
            row.push(fmt_speedup(s));
        }
        table.row(row);
    }
    let mut geo_row = vec!["geomean".to_string()];
    for col in &per_sweep {
        geo_row.push(fmt_speedup(geomean(col)));
    }
    table.row(geo_row);
    table.print("R-Fig.7: speedup vs tthread spawn overhead");
}
