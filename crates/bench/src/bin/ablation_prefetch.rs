//! Ablation: next-line L1 prefetching. Prefetching accelerates the
//! streaming region bodies the *baseline* must always execute, so it
//! narrows DTT's advantage — the better the conventional machine hides
//! memory latency, the less there is to skip. (The inverse of R-Fig.13.)

use dtt_bench::{fmt_speedup, geomean, run_pair, suite_with_traces, Table, EXPERIMENT_SCALE};
use dtt_sim::MachineConfig;

fn main() {
    let traces = suite_with_traces(EXPERIMENT_SCALE);
    let mut table = Table::new(vec![
        "benchmark".into(),
        "no prefetch".into(),
        "next-line prefetch".into(),
        "delta".into(),
    ]);
    let (mut off_all, mut on_all) = (Vec::new(), Vec::new());
    for (w, trace) in &traces {
        let cfg_off = MachineConfig::default();
        let mut cfg_on = MachineConfig::default();
        cfg_on.hierarchy.prefetch_next_line = true;
        let (base_off, dtt_off) = run_pair(&cfg_off, trace);
        let (base_on, dtt_on) = run_pair(&cfg_on, trace);
        let s_off = base_off.speedup_over(&dtt_off);
        let s_on = base_on.speedup_over(&dtt_on);
        off_all.push(s_off);
        on_all.push(s_on);
        table.row(vec![
            w.name().into(),
            fmt_speedup(s_off),
            fmt_speedup(s_on),
            format!("{:+.1}%", 100.0 * (s_on / s_off - 1.0)),
        ]);
    }
    table.row(vec![
        "geomean".into(),
        fmt_speedup(geomean(&off_all)),
        fmt_speedup(geomean(&on_all)),
        "-".into(),
    ]);
    table.print("Ablation: next-line L1 prefetching");
}
