//! R-Fig.9 — trigger granularity ablation: byte-precise vs word (8 B) vs
//! cache line (64 B) observation, reporting false-trigger fraction and the
//! resulting speedup. Coarser granularity is cheaper hardware but fires
//! tthreads for stores that merely *neighbour* the watched data.

use dtt_bench::{
    fmt_pct, fmt_speedup, geomean, run_pair, suite_with_traces, Table, EXPERIMENT_SCALE,
};
use dtt_sim::MachineConfig;

fn main() {
    let sweeps: [u32; 3] = [1, 8, 64];
    let traces = suite_with_traces(EXPERIMENT_SCALE);
    let mut table = Table::new(
        std::iter::once("benchmark".to_string())
            .chain(
                sweeps
                    .iter()
                    .flat_map(|g| [format!("{g}B speedup"), format!("{g}B false trig")]),
            )
            .collect(),
    );
    let mut per_sweep: Vec<Vec<f64>> = vec![Vec::new(); sweeps.len()];
    for (w, trace) in &traces {
        let mut row = vec![w.name().to_string()];
        for (i, &g) in sweeps.iter().enumerate() {
            let cfg = MachineConfig::default().with_granularity_bytes(g);
            let (base, dtt) = run_pair(&cfg, trace);
            let s = base.speedup_over(&dtt);
            per_sweep[i].push(s);
            let triggers: u64 = dtt.tthreads.iter().map(|t| t.triggers).sum();
            let false_triggers: u64 = dtt.tthreads.iter().map(|t| t.false_triggers).sum();
            let frac = if triggers == 0 {
                0.0
            } else {
                false_triggers as f64 / triggers as f64
            };
            row.push(fmt_speedup(s));
            row.push(fmt_pct(frac));
        }
        table.row(row);
    }
    let mut geo_row = vec!["geomean".to_string()];
    for col in &per_sweep {
        geo_row.push(fmt_speedup(geomean(col)));
        geo_row.push("-".into());
    }
    table.row(geo_row);
    table.print("R-Fig.9: trigger granularity (speedup and false-trigger fraction)");
}
