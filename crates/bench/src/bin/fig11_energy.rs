//! R-Fig.11 — energy proxy: activity-based energy of baseline vs DTT
//! execution. DTT removes instructions and cache activity and pays a small
//! per-store comparison cost.

use dtt_bench::{fmt_pct, run_pair, suite_with_traces, Table, EXPERIMENT_SCALE};
use dtt_sim::MachineConfig;

fn main() {
    let cfg = MachineConfig::default();
    let mut table = Table::new(vec![
        "benchmark".into(),
        "baseline nJ".into(),
        "dtt nJ".into(),
        "compare nJ".into(),
        "saving".into(),
    ]);
    let mut savings = Vec::new();
    for (w, trace) in suite_with_traces(EXPERIMENT_SCALE) {
        let (base, dtt) = run_pair(&cfg, &trace);
        let saving = 1.0 - dtt.energy_pj / base.energy_pj;
        savings.push(saving);
        let compare_nj = dtt.compares as f64 * 2.0 / 1000.0; // compare_pj default
        table.row(vec![
            w.name().into(),
            format!("{:.1}", base.energy_pj / 1000.0),
            format!("{:.1}", dtt.energy_pj / 1000.0),
            format!("{compare_nj:.1}"),
            fmt_pct(saving),
        ]);
    }
    let mean = savings.iter().sum::<f64>() / savings.len() as f64;
    table.row(vec![
        "mean".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        fmt_pct(mean),
    ]);
    table.print("R-Fig.11: energy proxy (activity model)");
}
