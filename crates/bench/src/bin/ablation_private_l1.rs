//! Ablation: where do the spare contexts' L1s live? A shared L1
//! (SMT-style contexts) lets offloaded tthreads reuse the main thread's
//! cache state; private L1s (CMP-style cores) isolate the main thread but
//! cost every offloaded execution a refill from L2.

use dtt_bench::{fmt_speedup, geomean, run_pair, suite_with_traces, Table, EXPERIMENT_SCALE};
use dtt_sim::MachineConfig;

fn main() {
    let traces = suite_with_traces(EXPERIMENT_SCALE);
    let mut table = Table::new(vec![
        "benchmark".into(),
        "shared L1".into(),
        "private L1".into(),
        "delta".into(),
    ]);
    let (mut shared_all, mut private_all) = (Vec::new(), Vec::new());
    for (w, trace) in &traces {
        let shared_cfg = MachineConfig::default().with_contexts(4);
        let private_cfg = MachineConfig::default()
            .with_contexts(4)
            .with_private_l1(true);
        let (base_s, dtt_s) = run_pair(&shared_cfg, trace);
        let (base_p, dtt_p) = run_pair(&private_cfg, trace);
        let s = base_s.speedup_over(&dtt_s);
        let p = base_p.speedup_over(&dtt_p);
        shared_all.push(s);
        private_all.push(p);
        table.row(vec![
            w.name().into(),
            fmt_speedup(s),
            fmt_speedup(p),
            format!("{:+.1}%", 100.0 * (p / s - 1.0)),
        ]);
    }
    table.row(vec![
        "geomean".into(),
        fmt_speedup(geomean(&shared_all)),
        fmt_speedup(geomean(&private_all)),
        "-".into(),
    ]);
    table.print("Ablation: shared vs private L1 for tthread contexts (4-context machine)");
}
