//! R-Fig.10 — thread-queue capacity sensitivity: geomean DTT speedup and
//! overflow counts as the pending-tthread queue shrinks. Overflowed
//! triggers force the tthread to run inline on the main context.

use dtt_bench::{fmt_speedup, geomean, run_pair, suite_with_traces, Table, EXPERIMENT_SCALE};
use dtt_sim::MachineConfig;

fn main() {
    let sweeps: [usize; 5] = [1, 2, 4, 16, 64];
    let traces = suite_with_traces(EXPERIMENT_SCALE);
    let mut table = Table::new(
        std::iter::once("benchmark".to_string())
            .chain(sweeps.iter().map(|q| format!("q={q}")))
            .chain(std::iter::once("overflows@q=1".to_string()))
            .collect(),
    );
    let mut per_sweep: Vec<Vec<f64>> = vec![Vec::new(); sweeps.len()];
    for (w, trace) in &traces {
        let mut row = vec![w.name().to_string()];
        let mut overflow_at_one = 0u64;
        for (i, &q) in sweeps.iter().enumerate() {
            let cfg = MachineConfig::default()
                .with_contexts(4)
                .with_queue_capacity(q);
            let (base, dtt) = run_pair(&cfg, trace);
            let s = base.speedup_over(&dtt);
            per_sweep[i].push(s);
            row.push(fmt_speedup(s));
            if q == 1 {
                overflow_at_one = dtt.queue_overflows;
            }
        }
        row.push(overflow_at_one.to_string());
        table.row(row);
    }
    let mut geo_row = vec!["geomean".to_string()];
    for col in &per_sweep {
        geo_row.push(fmt_speedup(geomean(col)));
    }
    geo_row.push("-".into());
    table.row(geo_row);
    table.print("R-Fig.10: speedup vs thread-queue capacity (4-context machine)");
}
