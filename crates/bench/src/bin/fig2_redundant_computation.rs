//! R-Fig.2 — how much *computation* is redundant: the fraction of dynamic
//! instructions spent in region instances whose watched inputs did not
//! change (exactly the work DTT can eliminate), per benchmark.

use dtt_bench::{fmt_pct, suite_with_traces, Table, EXPERIMENT_SCALE};
use dtt_profile::RedundancyProfiler;

fn main() {
    let mut table = Table::new(vec![
        "benchmark".into(),
        "instructions".into(),
        "redundant".into(),
        "fraction".into(),
        "redundant region instances".into(),
    ]);
    let mut fractions = Vec::new();
    for (w, trace) in suite_with_traces(EXPERIMENT_SCALE) {
        let profile = RedundancyProfiler::profile(&trace);
        fractions.push(profile.redundant_fraction());
        let instances: u64 = profile.tthreads.iter().map(|t| t.instances).sum();
        let redundant: u64 = profile.tthreads.iter().map(|t| t.redundant_instances).sum();
        table.row(vec![
            w.name().into(),
            profile.total_instructions.to_string(),
            profile.redundant_instructions().to_string(),
            fmt_pct(profile.redundant_fraction()),
            format!("{redundant}/{instances}"),
        ]);
    }
    let mean = fractions.iter().sum::<f64>() / fractions.len() as f64;
    table.row(vec![
        "mean".into(),
        "-".into(),
        "-".into(),
        fmt_pct(mean),
        "-".into(),
    ]);
    table.print("R-Fig.2: redundant computation per benchmark");
}
