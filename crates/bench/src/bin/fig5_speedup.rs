//! R-Fig.5 — the headline result: simulated speedup of DTT over the
//! baseline machine, per benchmark, on the default machine configuration.
//!
//! Paper reference points (abstract): speedups up to 5.9× (mcf), averaging
//! 46% across the modified C SPEC benchmarks.

use dtt_bench::{
    fmt_pct, fmt_speedup, geomean, run_pair, suite_with_traces, Table, EXPERIMENT_SCALE,
};
use dtt_sim::MachineConfig;

fn main() {
    let cfg = MachineConfig::default();
    let mut table = Table::new(vec![
        "benchmark".into(),
        "base cycles".into(),
        "dtt cycles".into(),
        "speedup".into(),
        "regions skipped".into(),
    ]);
    let mut speedups = Vec::new();
    for (w, trace) in suite_with_traces(EXPERIMENT_SCALE) {
        let (base, dtt) = run_pair(&cfg, &trace);
        let speedup = base.speedup_over(&dtt);
        speedups.push(speedup);
        table.row(vec![
            w.name().into(),
            base.cycles.to_string(),
            dtt.cycles.to_string(),
            fmt_speedup(speedup),
            fmt_pct(dtt.skip_rate()),
        ]);
    }
    table.row(vec![
        "geomean".into(),
        "-".into(),
        "-".into(),
        fmt_speedup(geomean(&speedups)),
        "-".into(),
    ]);
    table.print("R-Fig.5: DTT speedup over baseline (default machine)");
    println!(
        "paper: up to 5.9x (mcf), average +46%; measured max {} / geomean {}",
        fmt_speedup(speedups.iter().cloned().fold(f64::MIN, f64::max)),
        fmt_speedup(geomean(&speedups)),
    );
}
