//! Trigger-dispatch throughput: the lock-free status-word machine vs the
//! fully locked dispatch baseline (`Config::lockfree_dispatch = false`).
//!
//! Each producer thread owns an [`dtt_core::Accessor`] and hammers
//! *changing* stores into its own watched cell, so every store fires a
//! trigger and walks the dispatch path: raise, then either an enqueue
//! (with a worker wake) or a coalescing absorb into the already-Queued
//! tthread. Bodies are empty — the benchmark isolates dispatch, not
//! execution. Under the locked baseline every raise serializes on the
//! global state lock (shared with the two draining workers); the
//! lock-free machine raises with a CAS on the per-tthread status word and
//! touches only a sharded pending queue on the enqueue subset.
//!
//! Two results are reported, mirroring `store_throughput`:
//!
//! * the **measured** wall-clock table — real scaling on a multi-core
//!   host, collapsed by time-slicing on a single-core CI runner;
//! * a **modeled** 4-core projection from measured single-producer costs:
//!   dispatch under a global lock caps aggregate throughput at
//!   `1 / t_locked` regardless of the producer count, while lock-free
//!   raises on distinct status words scale at `T / t_lockfree`.
//!
//! After every run the dispatch books must balance exactly:
//! every fired trigger was enqueued or coalesced (the queue is sized so
//! overflow is impossible), and every enqueued unit was executed exactly
//! once — plus one rerun per absorbed mid-execution retrigger.
//!
//! A second scenario measures **work stealing** on a deliberately
//! imbalanced pending queue: every live tthread hashes to worker 0's
//! shard (ids ≡ 0 mod shard-count), so without stealing one worker drains
//! the whole backlog while three sleep. The modeled 4-worker comparison
//! projects from the measured single-worker item cost and the measured
//! per-entry migration overhead; the stealing run must also pass the
//! steal/park counter budget (`steals > 0`, parks within the wake +
//! timeout identity) that the CI dispatch job greps for.
//!
//! Usage: `dispatch_throughput [--smoke]` — `--smoke` runs a fast
//! CI-sized configuration (same code paths, unreliable timings).

use std::sync::Barrier;
use std::time::Instant;

use dtt_bench::{fmt_speedup, BenchRecord, Table};
use dtt_core::{Config, Runtime};

/// Drains with two workers in every configuration: dispatch must be
/// measured while the consumer side is live, or the queue never cycles
/// back to the enqueue path.
const WORKERS: usize = 2;

/// Runs `threads` producers of `iters` triggering stores each (one watched
/// cell and one empty tthread per producer) and returns aggregate
/// Mdispatches/s.
fn run(threads: usize, lockfree: bool, iters: usize) -> f64 {
    let cfg = Config::default()
        .with_workers(WORKERS)
        .with_lockfree_dispatch(lockfree)
        // Far above the tthread count: a coalescing queue holds at most
        // one live entry per tthread, so overflow stays impossible and
        // the conservation check below can be exact.
        .with_queue_capacity(64.max(4 * threads));
    let mut rt = Runtime::new(cfg, ());
    let cells = rt.alloc_array::<u64>(threads).unwrap();
    for t in 0..threads {
        let tt = rt.register(&format!("sink{t}"), |_| {});
        rt.watch(tt, cells.range_of(t, t + 1)).unwrap();
    }
    let start_gate = Barrier::new(threads + 1);
    let done_gate = Barrier::new(threads + 1);
    let mut secs = 0.0;
    std::thread::scope(|s| {
        let rt = &rt;
        let (start_gate, done_gate) = (&start_gate, &done_gate);
        for t in 0..threads {
            s.spawn(move || {
                let mut acc = rt.accessor();
                start_gate.wait();
                // Every store changes its cell, so every store fires the
                // producer's trigger and exercises dispatch.
                for i in 0..iters {
                    acc.write(cells, t, (i + 1) as u64);
                }
                done_gate.wait();
            });
        }
        start_gate.wait();
        let t0 = Instant::now();
        done_gate.wait();
        secs = t0.elapsed().as_secs_f64();
    });
    rt.join_all().unwrap();
    let snap = rt.stats();
    let c = snap.counters();
    // Exact conservation, both modes: every trigger is enqueued or
    // absorbed, and every enqueue (plus each absorbed mid-run retrigger)
    // is executed exactly once.
    assert_eq!(c.triggers_fired, (threads * iters) as u64);
    assert_eq!(
        c.queue_overflows, 0,
        "queue sized to make overflow impossible"
    );
    assert_eq!(
        c.triggers_fired,
        c.enqueues + c.coalesced_triggers,
        "dispatched triggers must balance at {threads} producers (lockfree={lockfree})"
    );
    assert_eq!(
        c.executions,
        c.enqueues + c.commit_retries + c.commit_retry_exhausted,
        "executions must balance at {threads} producers (lockfree={lockfree})"
    );
    assert!(c.worker_wakes <= c.enqueues);
    (threads * iters) as f64 / secs / 1e6
}

/// Counters carried out of one imbalanced-shard run.
struct ImbalancedRun {
    secs: f64,
    steals: u64,
    steal_batches: u64,
    worker_parks: u64,
}

/// Runs the imbalanced-shard scenario: `items` tthreads, every one of
/// them hashing to worker 0's pending shard, each body spinning `spin`
/// rounds of an LCG. The main thread fires all `items` triggers, then
/// `join_all` drains. Conservation and the steal/park budget are asserted
/// on every run.
fn run_imbalanced(workers: usize, stealing: bool, items: usize, spin: u64) -> ImbalancedRun {
    let cfg = Config::default()
        .with_workers(workers)
        .with_lockfree_dispatch(true)
        .with_work_stealing(stealing)
        .with_queue_capacity(items + 8);
    let mut rt = Runtime::new(cfg, ());
    let cells = rt.alloc_array::<u64>(items).unwrap();
    // The queue builds one shard per worker (power-of-two rounded) and
    // `push` shards by `id & mask`, so registering in groups of
    // `shards` and watching only the first of each group pins every
    // live tthread to shard 0 — the shard only worker 0 may pop.
    let shards = workers.clamp(1, 16).next_power_of_two();
    for k in 0..items {
        let tt = rt.register(&format!("hot{k}"), move |ctx| {
            let mut x = ctx.read(cells, k);
            for _ in 0..spin {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
            }
            std::hint::black_box(x);
        });
        rt.watch(tt, cells.range_of(k, k + 1)).unwrap();
        for d in 1..shards {
            rt.register(&format!("pad{k}_{d}"), |_| {});
        }
    }
    let t0 = Instant::now();
    {
        let mut acc = rt.accessor();
        for k in 0..items {
            acc.write(cells, k, (k + 1) as u64);
        }
    }
    rt.join_all().unwrap();
    let secs = t0.elapsed().as_secs_f64();
    let snap = rt.stats();
    let c = snap.counters();
    assert_eq!(c.triggers_fired, items as u64);
    assert_eq!(c.queue_overflows, 0, "queue sized above the backlog");
    assert_eq!(
        c.triggers_fired,
        c.enqueues + c.coalesced_triggers,
        "imbalanced dispatch must balance (workers={workers} stealing={stealing})"
    );
    assert_eq!(
        c.executions,
        c.enqueues + c.commit_retries + c.commit_retry_exhausted,
        "imbalanced executions must balance (workers={workers} stealing={stealing})"
    );
    if !stealing || workers <= 1 {
        assert_eq!(c.steals, 0, "stealing was off or impossible");
    }
    assert!(c.steal_batches <= c.steals);
    // The park budget: every counted park ended in a counted wake, a
    // counted timeout, or the final shutdown broadcast (one per worker).
    assert!(
        c.worker_parks <= c.worker_wakes + c.park_timeouts + workers as u64,
        "park budget exceeded: parks {} > wakes {} + timeouts {} + workers {workers}",
        c.worker_parks,
        c.worker_wakes,
        c.park_timeouts
    );
    ImbalancedRun {
        secs,
        steals: c.steals,
        steal_batches: c.steal_batches,
        worker_parks: c.worker_parks,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let iters = if smoke { 20_000 } else { 1_000_000 };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let mut table = Table::new(vec![
        "producers".into(),
        "locked Mdisp/s".into(),
        "lockfree Mdisp/s".into(),
        "speedup".into(),
    ]);
    let mut measured_1t_locked = 0.0;
    let mut measured_1t_lockfree = 0.0;
    let mut measured_4t_ratio = 0.0;
    for threads in [1usize, 2, 4] {
        let locked = run(threads, false, iters);
        let lockfree = run(threads, true, iters);
        if threads == 1 {
            measured_1t_locked = locked;
            measured_1t_lockfree = lockfree;
        }
        if threads == 4 {
            measured_4t_ratio = lockfree / locked;
        }
        table.row(vec![
            threads.to_string(),
            format!("{locked:.1}"),
            format!("{lockfree:.1}"),
            fmt_speedup(lockfree / locked),
        ]);
    }
    let mode = if smoke { " (smoke)" } else { "" };
    table.print(&format!(
        "trigger-dispatch throughput, measured on {cores} core(s): lock-free vs locked{mode}"
    ));

    // Serialization model from the measured single-producer costs: the
    // locked baseline holds the state lock across every raise, capping
    // aggregate dispatch at 1/t_locked however many producers run, while
    // lock-free raises on distinct status words share no lock and scale
    // with the core count.
    let modeled = 4.0 * measured_1t_lockfree / measured_1t_locked;
    println!(
        "single-producer cost: {:.1} ns/dispatch locked, {:.1} ns/dispatch lock-free",
        1e3 / measured_1t_locked,
        1e3 / measured_1t_lockfree
    );
    println!(
        "modeled 4-core, 4-producer speedup over the locked baseline: {}",
        fmt_speedup(modeled)
    );
    println!(
        "measured 4-producer speedup on this {cores}-core host: {}",
        fmt_speedup(measured_4t_ratio)
    );
    if cores < 4 {
        println!("note: with fewer cores than producers, time-slicing serializes every");
        println!("configuration equally; the modeled line is the serialization bound");
        println!("from measured single-producer costs.");
    }

    let record = BenchRecord {
        benchmark: "dispatch_throughput".into(),
        config: format!(
            "producers=[1,2,4] workers={WORKERS} iters={iters} lockfree-vs-locked{mode}"
        ),
        ns_per_op: 1e3 / measured_1t_lockfree,
        modeled_speedup: modeled,
        host_cores: cores,
    };
    match record.write() {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write bench record: {e}"),
    }

    // --- The imbalanced-shard work-stealing scenario -------------------
    // Sized so the serial drain far outlasts one scheduler timeslice: on
    // a one-core host the thieves only run when the owner is preempted
    // mid-drain, and a backlog that fits in a single slice never steals.
    let steal_workers = 4usize;
    let (items, spin) = if smoke {
        (128, 250_000)
    } else {
        (256, 200_000)
    };

    // Calibrations: the per-item body cost from a single-worker drain
    // (no foreign shards, stealing impossible), and the per-entry
    // dispatch+migration overhead bound from an empty-body stealing run
    // (best of three — a single stray park timeout would inflate it).
    let calib = run_imbalanced(1, true, items, spin);
    let t_item = calib.secs / items as f64;
    let empty_secs = (0..3)
        .map(|_| run_imbalanced(steal_workers, true, items, 0).secs)
        .fold(f64::INFINITY, f64::min);
    let t_move = empty_secs / items as f64;

    let off = run_imbalanced(steal_workers, false, items, spin);
    // On a one-core host the owner can drain the whole backlog inside a
    // single scheduler timeslice before any thief runs, so a round with
    // zero steals is a scheduling artifact, not a stealing bug — retry a
    // few rounds until the thieves get on-CPU time.
    let mut on = run_imbalanced(steal_workers, true, items, spin);
    for round in 1..10 {
        if on.steals > 0 {
            break;
        }
        println!("round {round}: owner drained solo (0 steals), retrying");
        on = run_imbalanced(steal_workers, true, items, spin);
    }
    assert!(
        on.steals > 0,
        "an all-one-shard backlog at {steal_workers} workers must provoke steals"
    );

    let mut steal_table = Table::new(vec![
        "config".into(),
        "wall ms".into(),
        "steals".into(),
        "batches".into(),
        "parks".into(),
    ]);
    for (name, r) in [
        ("1 worker (calib)", &calib),
        ("4w stealing off", &off),
        ("4w stealing on", &on),
    ] {
        steal_table.row(vec![
            name.into(),
            format!("{:.2}", r.secs * 1e3),
            r.steals.to_string(),
            r.steal_batches.to_string(),
            r.worker_parks.to_string(),
        ]);
    }
    steal_table.print(&format!(
        "imbalanced-shard drain, {items} items x {spin}-round bodies on {cores} core(s){mode}"
    ));

    // Serialization model: with stealing off only the owning worker may
    // pop, so the drain is `items * t_item` however many workers idle
    // alongside it. With stealing on, four workers split the backlog and
    // each migrated entry pays at most the measured empty-body
    // dispatch+steal cost.
    let modeled_off = items as f64 * t_item;
    let modeled_on = items as f64 * t_item / steal_workers as f64 + on.steals as f64 * t_move;
    let steal_speedup = modeled_off / modeled_on;
    println!(
        "per-item body cost {:.1} us, per-entry migration bound {:.2} us",
        t_item * 1e6,
        t_move * 1e6
    );
    println!(
        "modeled {steal_workers}-core imbalanced-drain speedup, stealing on vs off: {}",
        fmt_speedup(steal_speedup)
    );
    println!(
        "measured on this {cores}-core host: {}",
        fmt_speedup(off.secs / on.secs)
    );
    assert!(
        steal_speedup >= 1.5,
        "work stealing must win >= 1.5x on the modeled imbalanced drain, got {steal_speedup:.2}"
    );
    println!(
        "steal-budget check: PASS (steals={} batches={} parks on={} off={})",
        on.steals, on.steal_batches, on.worker_parks, off.worker_parks
    );

    let steal_record = BenchRecord {
        benchmark: "dispatch_steal".into(),
        config: format!(
            "imbalanced items={items} spin={spin} workers={steal_workers} stealing on-vs-off{mode}"
        ),
        ns_per_op: t_item * 1e9,
        modeled_speedup: steal_speedup,
        host_cores: cores,
    };
    match steal_record.write() {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write bench record: {e}"),
    }
}
