//! Trigger-dispatch throughput: the lock-free status-word machine vs the
//! fully locked dispatch baseline (`Config::lockfree_dispatch = false`).
//!
//! Each producer thread owns an [`dtt_core::Accessor`] and hammers
//! *changing* stores into its own watched cell, so every store fires a
//! trigger and walks the dispatch path: raise, then either an enqueue
//! (with a worker wake) or a coalescing absorb into the already-Queued
//! tthread. Bodies are empty — the benchmark isolates dispatch, not
//! execution. Under the locked baseline every raise serializes on the
//! global state lock (shared with the two draining workers); the
//! lock-free machine raises with a CAS on the per-tthread status word and
//! touches only a sharded pending queue on the enqueue subset.
//!
//! Two results are reported, mirroring `store_throughput`:
//!
//! * the **measured** wall-clock table — real scaling on a multi-core
//!   host, collapsed by time-slicing on a single-core CI runner;
//! * a **modeled** 4-core projection from measured single-producer costs:
//!   dispatch under a global lock caps aggregate throughput at
//!   `1 / t_locked` regardless of the producer count, while lock-free
//!   raises on distinct status words scale at `T / t_lockfree`.
//!
//! After every run the dispatch books must balance exactly:
//! every fired trigger was enqueued or coalesced (the queue is sized so
//! overflow is impossible), and every enqueued unit was executed exactly
//! once — plus one rerun per absorbed mid-execution retrigger.
//!
//! Usage: `dispatch_throughput [--smoke]` — `--smoke` runs a fast
//! CI-sized configuration (same code paths, unreliable timings).

use std::sync::Barrier;
use std::time::Instant;

use dtt_bench::{fmt_speedup, BenchRecord, Table};
use dtt_core::{Config, Runtime};

/// Drains with two workers in every configuration: dispatch must be
/// measured while the consumer side is live, or the queue never cycles
/// back to the enqueue path.
const WORKERS: usize = 2;

/// Runs `threads` producers of `iters` triggering stores each (one watched
/// cell and one empty tthread per producer) and returns aggregate
/// Mdispatches/s.
fn run(threads: usize, lockfree: bool, iters: usize) -> f64 {
    let cfg = Config::default()
        .with_workers(WORKERS)
        .with_lockfree_dispatch(lockfree)
        // Far above the tthread count: a coalescing queue holds at most
        // one live entry per tthread, so overflow stays impossible and
        // the conservation check below can be exact.
        .with_queue_capacity(64.max(4 * threads));
    let mut rt = Runtime::new(cfg, ());
    let cells = rt.alloc_array::<u64>(threads).unwrap();
    for t in 0..threads {
        let tt = rt.register(&format!("sink{t}"), |_| {});
        rt.watch(tt, cells.range_of(t, t + 1)).unwrap();
    }
    let start_gate = Barrier::new(threads + 1);
    let done_gate = Barrier::new(threads + 1);
    let mut secs = 0.0;
    std::thread::scope(|s| {
        let rt = &rt;
        let (start_gate, done_gate) = (&start_gate, &done_gate);
        for t in 0..threads {
            s.spawn(move || {
                let mut acc = rt.accessor();
                start_gate.wait();
                // Every store changes its cell, so every store fires the
                // producer's trigger and exercises dispatch.
                for i in 0..iters {
                    acc.write(cells, t, (i + 1) as u64);
                }
                done_gate.wait();
            });
        }
        start_gate.wait();
        let t0 = Instant::now();
        done_gate.wait();
        secs = t0.elapsed().as_secs_f64();
    });
    rt.join_all().unwrap();
    let snap = rt.stats();
    let c = snap.counters();
    // Exact conservation, both modes: every trigger is enqueued or
    // absorbed, and every enqueue (plus each absorbed mid-run retrigger)
    // is executed exactly once.
    assert_eq!(c.triggers_fired, (threads * iters) as u64);
    assert_eq!(
        c.queue_overflows, 0,
        "queue sized to make overflow impossible"
    );
    assert_eq!(
        c.triggers_fired,
        c.enqueues + c.coalesced_triggers,
        "dispatched triggers must balance at {threads} producers (lockfree={lockfree})"
    );
    assert_eq!(
        c.executions,
        c.enqueues + c.commit_retries + c.commit_retry_exhausted,
        "executions must balance at {threads} producers (lockfree={lockfree})"
    );
    assert!(c.worker_wakes <= c.enqueues);
    (threads * iters) as f64 / secs / 1e6
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let iters = if smoke { 20_000 } else { 1_000_000 };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let mut table = Table::new(vec![
        "producers".into(),
        "locked Mdisp/s".into(),
        "lockfree Mdisp/s".into(),
        "speedup".into(),
    ]);
    let mut measured_1t_locked = 0.0;
    let mut measured_1t_lockfree = 0.0;
    let mut measured_4t_ratio = 0.0;
    for threads in [1usize, 2, 4] {
        let locked = run(threads, false, iters);
        let lockfree = run(threads, true, iters);
        if threads == 1 {
            measured_1t_locked = locked;
            measured_1t_lockfree = lockfree;
        }
        if threads == 4 {
            measured_4t_ratio = lockfree / locked;
        }
        table.row(vec![
            threads.to_string(),
            format!("{locked:.1}"),
            format!("{lockfree:.1}"),
            fmt_speedup(lockfree / locked),
        ]);
    }
    let mode = if smoke { " (smoke)" } else { "" };
    table.print(&format!(
        "trigger-dispatch throughput, measured on {cores} core(s): lock-free vs locked{mode}"
    ));

    // Serialization model from the measured single-producer costs: the
    // locked baseline holds the state lock across every raise, capping
    // aggregate dispatch at 1/t_locked however many producers run, while
    // lock-free raises on distinct status words share no lock and scale
    // with the core count.
    let modeled = 4.0 * measured_1t_lockfree / measured_1t_locked;
    println!(
        "single-producer cost: {:.1} ns/dispatch locked, {:.1} ns/dispatch lock-free",
        1e3 / measured_1t_locked,
        1e3 / measured_1t_lockfree
    );
    println!(
        "modeled 4-core, 4-producer speedup over the locked baseline: {}",
        fmt_speedup(modeled)
    );
    println!(
        "measured 4-producer speedup on this {cores}-core host: {}",
        fmt_speedup(measured_4t_ratio)
    );
    if cores < 4 {
        println!("note: with fewer cores than producers, time-slicing serializes every");
        println!("configuration equally; the modeled line is the serialization bound");
        println!("from measured single-producer costs.");
    }

    let record = BenchRecord {
        benchmark: "dispatch_throughput".into(),
        config: format!(
            "producers=[1,2,4] workers={WORKERS} iters={iters} lockfree-vs-locked{mode}"
        ),
        ns_per_op: 1e3 / measured_1t_lockfree,
        modeled_speedup: modeled,
        host_cores: cores,
    };
    match record.write() {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write bench record: {e}"),
    }
}
