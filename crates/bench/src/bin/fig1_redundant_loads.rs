//! R-Fig.1 — the motivating characterization: fraction of dynamic loads
//! that are redundant (fetch the value most recently loaded from or stored
//! to that address), per benchmark.
//!
//! Paper reference point (abstract): 78% of all loads fetch redundant data.

use dtt_bench::{fmt_pct, suite_with_traces, Table, EXPERIMENT_SCALE};
use dtt_profile::LoadProfiler;

fn main() {
    let mut table = Table::new(vec![
        "benchmark".into(),
        "loads".into(),
        "redundant".into(),
        "fraction".into(),
    ]);
    let mut fractions = Vec::new();
    for (w, trace) in suite_with_traces(EXPERIMENT_SCALE) {
        let profile = LoadProfiler::profile(&trace);
        fractions.push(profile.redundant_fraction());
        table.row(vec![
            w.name().into(),
            profile.total_loads.to_string(),
            profile.redundant_loads.to_string(),
            fmt_pct(profile.redundant_fraction()),
        ]);
    }
    let mean = fractions.iter().sum::<f64>() / fractions.len() as f64;
    table.row(vec!["mean".into(), "-".into(), "-".into(), fmt_pct(mean)]);
    table.print("R-Fig.1: redundant loads per benchmark");
    println!(
        "paper: 78% of all loads are redundant; measured mean {}",
        fmt_pct(mean)
    );
}
