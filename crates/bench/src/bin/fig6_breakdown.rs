//! R-Fig.6 — where the speedup comes from: redundancy elimination alone
//! (contexts = 1, every dirty region runs inline) versus elimination plus
//! parallel overlap (contexts = 2, dirty regions offload to a spare
//! context).

use dtt_bench::{fmt_speedup, geomean, run_pair, suite_with_traces, Table, EXPERIMENT_SCALE};
use dtt_sim::{simulate, MachineConfig, SimMode};

fn main() {
    let elim_cfg = MachineConfig::default().with_contexts(1);
    let full_cfg = MachineConfig::default().with_contexts(2);
    let mut table = Table::new(vec![
        "benchmark".into(),
        "elimination only".into(),
        "+ overlap".into(),
        "overlap share".into(),
    ]);
    let (mut elims, mut fulls) = (Vec::new(), Vec::new());
    for (w, trace) in suite_with_traces(EXPERIMENT_SCALE) {
        let (base, elim) = run_pair(&elim_cfg, &trace);
        let full = simulate(&full_cfg, &trace, SimMode::Dtt);
        let s_elim = base.speedup_over(&elim);
        let s_full = base.speedup_over(&full);
        elims.push(s_elim);
        fulls.push(s_full);
        table.row(vec![
            w.name().into(),
            fmt_speedup(s_elim),
            fmt_speedup(s_full),
            format!("{:+.1}%", 100.0 * (s_full / s_elim - 1.0)),
        ]);
    }
    table.row(vec![
        "geomean".into(),
        fmt_speedup(geomean(&elims)),
        fmt_speedup(geomean(&fulls)),
        "-".into(),
    ]);
    table.print("R-Fig.6: speedup decomposition (elimination vs elimination+overlap)");
}
