//! Ablation: silent-store suppression. Without value-comparing stores,
//! every store to a watched range triggers its tthreads — the design
//! degenerates to "recompute on any write". This quantifies how much of
//! DTT's benefit comes specifically from *silence detection*.

use dtt_bench::{
    fmt_pct, fmt_speedup, geomean, run_pair, suite_with_traces, Table, EXPERIMENT_SCALE,
};
use dtt_core::Config;
use dtt_sim::MachineConfig;
use dtt_workloads::suite;

fn main() {
    let traces = suite_with_traces(EXPERIMENT_SCALE);
    let mut table = Table::new(vec![
        "benchmark".into(),
        "suppress on".into(),
        "suppress off".into(),
        "benefit lost".into(),
        "silent stores".into(),
    ]);
    let (mut on_all, mut off_all) = (Vec::new(), Vec::new());
    let silent: Vec<f64> = suite(EXPERIMENT_SCALE)
        .into_iter()
        .map(|w| w.run_dtt(Config::default()).stats.silent_store_fraction())
        .collect();
    for (i, (w, trace)) in traces.iter().enumerate() {
        let cfg_on = MachineConfig::default();
        let cfg_off = MachineConfig::default().with_silent_store_suppression(false);
        let (base, dtt_on) = run_pair(&cfg_on, trace);
        let (_, dtt_off) = run_pair(&cfg_off, trace);
        let s_on = base.speedup_over(&dtt_on);
        let s_off = base.speedup_over(&dtt_off);
        on_all.push(s_on);
        off_all.push(s_off);
        table.row(vec![
            w.name().into(),
            fmt_speedup(s_on),
            fmt_speedup(s_off),
            format!(
                "{:.1}%",
                100.0 * (1.0 - (s_off - 1.0) / (s_on - 1.0).max(1e-9))
            ),
            fmt_pct(silent[i]),
        ]);
    }
    table.row(vec![
        "geomean".into(),
        fmt_speedup(geomean(&on_all)),
        fmt_speedup(geomean(&off_all)),
        "-".into(),
        "-".into(),
    ]);
    table.print("Ablation: silent-store suppression on vs off");
    println!("without suppression, skipping only happens when *no* store touched the");
    println!("watched data at all; benchmarks whose stores are mostly silent lose the most.");
}
