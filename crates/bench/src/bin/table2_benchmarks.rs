//! R-Tab.2 — per-benchmark DTT characteristics, from the software runtime:
//! tthreads, triggering stores, silent-store fraction, trigger density,
//! and the skip rate at the joins.

use dtt_bench::{fmt_pct, Table, EXPERIMENT_SCALE};
use dtt_core::Config;
use dtt_workloads::suite;

fn main() {
    let mut table = Table::new(vec![
        "benchmark".into(),
        "spec model".into(),
        "tthreads".into(),
        "tracked stores".into(),
        "silent".into(),
        "triggers/kstore".into(),
        "skip rate".into(),
    ]);
    for w in suite(EXPERIMENT_SCALE) {
        let run = w.run_dtt(Config::default());
        let c = run.stats.counters();
        table.row(vec![
            w.name().into(),
            w.spec_inspiration().into(),
            run.tthreads.len().to_string(),
            c.tracked_stores.to_string(),
            fmt_pct(run.stats.silent_store_fraction()),
            format!("{:.1}", run.stats.triggers_per_kilo_store()),
            fmt_pct(run.stats.skip_fraction()),
        ]);
    }
    table.print("R-Tab.2: benchmark characteristics (software DTT runtime, deferred executor)");
}
