//! R-Fig.8 — sensitivity to hardware contexts: geomean DTT speedup with 1,
//! 2, 4 and 8 total contexts (contexts − 1 spare contexts run tthreads).

use dtt_bench::{fmt_speedup, geomean, run_pair, suite_with_traces, Table, EXPERIMENT_SCALE};
use dtt_sim::MachineConfig;

fn main() {
    let sweeps: [usize; 4] = [1, 2, 4, 8];
    let traces = suite_with_traces(EXPERIMENT_SCALE);
    let mut table = Table::new(
        std::iter::once("benchmark".to_string())
            .chain(sweeps.iter().map(|c| format!("{c} ctx")))
            .collect(),
    );
    let mut per_sweep: Vec<Vec<f64>> = vec![Vec::new(); sweeps.len()];
    for (w, trace) in &traces {
        let mut row = vec![w.name().to_string()];
        for (i, &contexts) in sweeps.iter().enumerate() {
            let cfg = MachineConfig::default().with_contexts(contexts);
            let (base, dtt) = run_pair(&cfg, trace);
            let s = base.speedup_over(&dtt);
            per_sweep[i].push(s);
            row.push(fmt_speedup(s));
        }
        table.row(row);
    }
    let mut geo_row = vec!["geomean".to_string()];
    for col in &per_sweep {
        geo_row.push(fmt_speedup(geomean(col)));
    }
    table.row(geo_row);
    table.print("R-Fig.8: speedup vs hardware contexts");
}
