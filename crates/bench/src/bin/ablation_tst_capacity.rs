//! Ablation: thread-status-table capacity. Tthreads beyond the TST are
//! unmanaged — the hardware cannot track their triggers, so their regions
//! always execute. Benchmarks with many tthreads (bzip2: 24, ammp/gzip:
//! 16) lose their benefit as the table shrinks.

use dtt_bench::{fmt_speedup, geomean, run_pair, suite_with_traces, Table, EXPERIMENT_SCALE};
use dtt_sim::MachineConfig;

fn main() {
    let sweeps: [usize; 5] = [1, 4, 8, 16, 32];
    let traces = suite_with_traces(EXPERIMENT_SCALE);
    let mut table = Table::new(
        std::iter::once("benchmark".to_string())
            .chain(sweeps.iter().map(|t| format!("tst={t}")))
            .chain(std::iter::once("tthreads".to_string()))
            .collect(),
    );
    let mut per_sweep: Vec<Vec<f64>> = vec![Vec::new(); sweeps.len()];
    for (w, trace) in &traces {
        let mut row = vec![w.name().to_string()];
        for (i, &cap) in sweeps.iter().enumerate() {
            let cfg = MachineConfig::default().with_tst_capacity(cap);
            let (base, dtt) = run_pair(&cfg, trace);
            let s = base.speedup_over(&dtt);
            per_sweep[i].push(s);
            row.push(fmt_speedup(s));
        }
        row.push(trace.tthread_names().len().to_string());
        table.row(row);
    }
    let mut geo = vec!["geomean".to_string()];
    for col in &per_sweep {
        geo.push(fmt_speedup(geomean(col)));
    }
    geo.push("-".into());
    table.row(geo);
    table.print("Ablation: thread status table capacity");
}
