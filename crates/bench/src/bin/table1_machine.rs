//! R-Tab.1 — the simulated machine configuration (the reconstruction of
//! the paper's processor-parameters table).

use dtt_sim::MachineConfig;

fn main() {
    println!("== R-Tab.1: simulated machine configuration ==");
    println!("{}", MachineConfig::default());
}
