//! Observability overhead on the tracked-store hot path.
//!
//! The instrumentation contract is that a disabled recorder costs one
//! relaxed atomic load per hook — indistinguishable from noise next to the
//! store path's stripe lock + shadow compare. This bench measures it
//! instead of asserting it: the same single-thread changing-store loop as
//! `store_throughput`, under three configurations:
//!
//! * **off** — `Config::default()`: rings never allocated, every hook is
//!   one `Relaxed` load of the enabled flag;
//! * **on** — observability enabled, events recorded into per-shard rings
//!   (oldest events overwritten once a ring laps, which is the designed
//!   steady state for a capture window);
//! * **on+drain** — enabled with a periodic collector drain, the
//!   profiling-session pattern;
//! * **on+faults armed** — a [`FaultPlan`] is installed with the
//!   obs-publish point at rate 0, so every record takes the armed probe's
//!   cold path but never fires;
//! * **on+faults drawing** — the obs-publish point at the minimum nonzero
//!   rate with a zero budget: every record draws from the shared SplitMix64
//!   stream (a `fetch_add` on one cache line) and still never drops.
//!
//! The fault probes follow the same disabled-path contract as the obs
//! hooks — one relaxed atomic load when no plan is installed — so the
//! **off** row doubles as the "fault hooks compiled in but disarmed"
//! measurement.
//!
//! The headline number is the off-vs-`store_throughput`-style cost in
//! ns/store and the enabled multiplier. `--smoke` runs a CI-sized loop
//! (same code paths, unreliable timings).

use std::time::Instant;

use dtt_bench::Table;
use dtt_core::fault::{FaultPlan, FaultPoint, ALWAYS};
use dtt_core::{Config, Runtime};

/// Elements in the hammered array (64 cache lines).
const CHUNK: usize = 512;

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Off,
    On,
    OnDrain,
    FaultsArmed,
    FaultsDrawing,
}

/// Runs `iters` changing stores and returns (ns/store, events drained).
fn run(mode: Mode, iters: usize) -> (f64, u64) {
    let mut cfg = Config::default().with_observability(mode != Mode::Off);
    match mode {
        // Arm the layer via an off-path point so the obs-publish probe
        // takes the cold path with rate 0 (no draw, no fire).
        Mode::FaultsArmed => {
            cfg = cfg.with_fault_plan(
                FaultPlan::new(7)
                    .with_rate(FaultPoint::WorkerSchedule, ALWAYS)
                    .with_budget(FaultPoint::WorkerSchedule, 0),
            );
        }
        // Minimum nonzero rate + zero budget: every record draws from the
        // shared RNG, the rare rate-pass is then refused by the budget.
        Mode::FaultsDrawing => {
            cfg = cfg.with_fault_plan(
                FaultPlan::new(7)
                    .with_rate(FaultPoint::ObsPublish, 1)
                    .with_budget(FaultPoint::ObsPublish, 0),
            );
        }
        _ => {}
    }
    let mut rt = Runtime::new(cfg, ());
    let xs = rt.alloc_array::<u64>(CHUNK).unwrap();
    let mut acc = rt.accessor();
    let drain_every = (iters / 16).max(1);
    let mut drained = 0u64;
    let t0 = Instant::now();
    for i in 0..iters {
        // Every store changes its cell, so none are silent-suppressed and
        // each takes the full detect-and-record path.
        acc.write(xs, i % CHUNK, (i + 1) as u64);
        if mode == Mode::OnDrain && i % drain_every == drain_every - 1 {
            drained += rt.obs_drain().events.len() as u64;
        }
    }
    let secs = t0.elapsed().as_secs_f64();
    drop(acc);
    let stats = rt.stats();
    assert_eq!(stats.counters().tracked_stores, iters as u64);
    assert_eq!(stats.counters().silent_stores, 0);
    if mode != Mode::Off {
        let rec = rt.obs_drain();
        drained += rec.events.len() as u64;
        assert!(
            rec.accounting_balances(),
            "ring accounting must balance at quiescence"
        );
        assert!(drained > 0, "enabled run recorded no events");
    } else {
        assert_eq!(
            rt.obs_drain().issued,
            0,
            "disabled run must not record events"
        );
    }
    (secs * 1e9 / iters as f64, drained)
}

/// Best-of-N to shave scheduler noise off a short single-thread loop.
fn best_of(mode: Mode, iters: usize, reps: usize) -> (f64, u64) {
    (0..reps)
        .map(|_| run(mode, iters))
        .min_by(|a, b| a.0.total_cmp(&b.0))
        .unwrap()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (iters, reps) = if smoke { (50_000, 2) } else { (2_000_000, 5) };

    let (off_ns, _) = best_of(Mode::Off, iters, reps);
    let (on_ns, on_events) = best_of(Mode::On, iters, reps);
    let (drain_ns, drain_events) = best_of(Mode::OnDrain, iters, reps);
    let (armed_ns, armed_events) = best_of(Mode::FaultsArmed, iters, reps);
    let (draw_ns, draw_events) = best_of(Mode::FaultsDrawing, iters, reps);

    let mut table = Table::new(vec![
        "configuration".into(),
        "ns/store".into(),
        "vs off".into(),
        "events".into(),
    ]);
    table.row(vec![
        "obs off (default)".into(),
        format!("{off_ns:.1}"),
        "1.00x".into(),
        "0".into(),
    ]);
    table.row(vec![
        "obs on".into(),
        format!("{on_ns:.1}"),
        format!("{:.2}x", on_ns / off_ns),
        on_events.to_string(),
    ]);
    table.row(vec![
        "obs on + drain".into(),
        format!("{drain_ns:.1}"),
        format!("{:.2}x", drain_ns / off_ns),
        drain_events.to_string(),
    ]);
    table.row(vec![
        "obs on + faults armed".into(),
        format!("{armed_ns:.1}"),
        format!("{:.2}x", armed_ns / off_ns),
        armed_events.to_string(),
    ]);
    table.row(vec![
        "obs on + faults drawing".into(),
        format!("{draw_ns:.1}"),
        format!("{:.2}x", draw_ns / off_ns),
        draw_events.to_string(),
    ]);
    let mode = if smoke { " (smoke)" } else { "" };
    table.print(&format!(
        "observability overhead on the changing-store path{mode}"
    ));
    println!(
        "disabled-path cost: {off_ns:.1} ns/store — the obs hook and the \
         fault probe are each a relaxed atomic load, compare against \
         store_throughput's 1-thread sharded row"
    );
    println!(
        "enabled cost: +{:.1} ns/store ({:.0}% of the store path)",
        on_ns - off_ns,
        100.0 * (on_ns - off_ns) / off_ns
    );
    println!(
        "armed fault probe: +{:.1} ns/store over obs on; drawing probe: \
         +{:.1} ns/store",
        armed_ns - on_ns,
        draw_ns - on_ns
    );
}
