//! R-Tab.3 — dynamic instructions eliminated: the fraction of the
//! baseline's dynamic instruction stream that the DTT machine never
//! executes (skipped region instances).

use dtt_bench::{fmt_pct, run_pair, suite_with_traces, Table, EXPERIMENT_SCALE};
use dtt_sim::MachineConfig;

fn main() {
    let cfg = MachineConfig::default();
    let mut table = Table::new(vec![
        "benchmark".into(),
        "baseline instr".into(),
        "dtt executed".into(),
        "dtt skipped".into(),
        "reduction".into(),
    ]);
    let mut reductions = Vec::new();
    for (w, trace) in suite_with_traces(EXPERIMENT_SCALE) {
        let (base, dtt) = run_pair(&cfg, &trace);
        reductions.push(dtt.instruction_reduction());
        table.row(vec![
            w.name().into(),
            base.instructions_executed.to_string(),
            dtt.instructions_executed.to_string(),
            dtt.instructions_skipped.to_string(),
            fmt_pct(dtt.instruction_reduction()),
        ]);
    }
    let mean = reductions.iter().sum::<f64>() / reductions.len() as f64;
    table.row(vec![
        "mean".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        fmt_pct(mean),
    ]);
    table.print("R-Tab.3: dynamic instruction reduction");
}
