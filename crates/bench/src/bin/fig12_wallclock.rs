//! R-Fig.12 — measured wall-clock speedup of the *software* DTT runtime:
//! baseline vs DTT with the deferred executor and with a 2-worker parallel
//! executor, at reference scale. (Criterion benches in `benches/` give the
//! statistically rigorous version; this binary prints a quick table.)

use std::time::Instant;

use dtt_bench::{fmt_speedup, geomean, Table};
use dtt_core::Config;
use dtt_workloads::{suite, Scale};

fn main() {
    let mut table = Table::new(vec![
        "benchmark".into(),
        "baseline ms".into(),
        "dtt ms".into(),
        "dtt 2-worker ms".into(),
        "speedup".into(),
        "parallel speedup".into(),
    ]);
    let mut speedups = Vec::new();
    for w in suite(Scale::Reference) {
        let t0 = Instant::now();
        let base_digest = w.run_baseline();
        let base = t0.elapsed();

        let t1 = Instant::now();
        let run = w.run_dtt(Config::default());
        let dtt = t1.elapsed();

        let t2 = Instant::now();
        let run_par = w.run_dtt(Config::default().with_workers(2));
        let par = t2.elapsed();

        assert_eq!(base_digest, run.digest, "{}: dtt digest mismatch", w.name());
        assert_eq!(
            base_digest,
            run_par.digest,
            "{}: parallel digest mismatch",
            w.name()
        );

        let s = base.as_secs_f64() / dtt.as_secs_f64();
        let sp = base.as_secs_f64() / par.as_secs_f64();
        speedups.push(s);
        table.row(vec![
            w.name().into(),
            format!("{:.1}", base.as_secs_f64() * 1000.0),
            format!("{:.1}", dtt.as_secs_f64() * 1000.0),
            format!("{:.1}", par.as_secs_f64() * 1000.0),
            fmt_speedup(s),
            fmt_speedup(sp),
        ]);
    }
    table.row(vec![
        "geomean".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        fmt_speedup(geomean(&speedups)),
        "-".into(),
    ]);
    table.print("R-Fig.12: measured wall-clock (software runtime, reference scale)");
    println!("note: software tracked stores add overhead the proposed hardware would hide;");
    println!("the deferred-executor column is the honest software-DTT comparison.");
}
