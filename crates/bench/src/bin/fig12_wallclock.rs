//! R-Fig.12 — measured wall-clock speedup of the *software* DTT runtime:
//! baseline vs DTT with the deferred executor and with a 2-worker parallel
//! executor, at reference scale. (Criterion benches in `benches/` give the
//! statistically rigorous version; this binary prints a quick table.)
//!
//! Usage: `fig12_wallclock [--smoke]` — `--smoke` runs the train-scale
//! suite (same code paths, CI-sized, unreliable timings).

use std::time::Instant;

use dtt_bench::{fmt_speedup, geomean, BenchRecord, Table};
use dtt_core::Config;
use dtt_workloads::{suite, Scale};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = if smoke {
        Scale::Train
    } else {
        Scale::Reference
    };
    let mut table = Table::new(vec![
        "benchmark".into(),
        "baseline ms".into(),
        "dtt ms".into(),
        "dtt 2-worker ms".into(),
        "speedup".into(),
        "parallel speedup".into(),
    ]);
    let mut speedups = Vec::new();
    let mut dtt_total_ns = 0.0;
    let mut workloads = 0usize;
    for w in suite(scale) {
        let t0 = Instant::now();
        let base_digest = w.run_baseline();
        let base = t0.elapsed();

        let t1 = Instant::now();
        let run = w.run_dtt(Config::default());
        let dtt = t1.elapsed();

        let t2 = Instant::now();
        let run_par = w.run_dtt(Config::default().with_workers(2));
        let par = t2.elapsed();

        assert_eq!(base_digest, run.digest, "{}: dtt digest mismatch", w.name());
        assert_eq!(
            base_digest,
            run_par.digest,
            "{}: parallel digest mismatch",
            w.name()
        );

        let s = base.as_secs_f64() / dtt.as_secs_f64();
        let sp = base.as_secs_f64() / par.as_secs_f64();
        speedups.push(s);
        dtt_total_ns += dtt.as_secs_f64() * 1e9;
        workloads += 1;
        table.row(vec![
            w.name().into(),
            format!("{:.1}", base.as_secs_f64() * 1000.0),
            format!("{:.1}", dtt.as_secs_f64() * 1000.0),
            format!("{:.1}", par.as_secs_f64() * 1000.0),
            fmt_speedup(s),
            fmt_speedup(sp),
        ]);
    }
    let mode = if smoke { ", smoke" } else { "" };
    table.row(vec![
        "geomean".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        fmt_speedup(geomean(&speedups)),
        "-".into(),
    ]);
    table.print(&format!(
        "R-Fig.12: measured wall-clock (software runtime{mode})"
    ));
    println!("note: software tracked stores add overhead the proposed hardware would hide;");
    println!("the deferred-executor column is the honest software-DTT comparison.");

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let record = BenchRecord {
        benchmark: "fig12_wallclock".into(),
        config: format!("scale={scale:?} suite of {workloads} workloads"),
        ns_per_op: dtt_total_ns / workloads.max(1) as f64,
        modeled_speedup: geomean(&speedups),
        host_cores: cores,
    };
    match record.write() {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write bench record: {e}"),
    }
}
