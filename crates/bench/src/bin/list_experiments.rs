//! Prints the experiment catalogue: every binary in this crate, what it
//! reproduces, and the paper reference point where one exists.

fn main() {
    println!("== dtt-bench experiment catalogue ==");
    println!("run each with: cargo run --release -p dtt-bench --bin <name>\n");
    let rows: &[(&str, &str)] = &[
        ("table1_machine", "R-Tab.1  simulated machine configuration"),
        (
            "fig1_redundant_loads",
            "R-Fig.1  redundant loads per benchmark (paper: 78% mean)",
        ),
        (
            "fig2_redundant_computation",
            "R-Fig.2  redundant computation per benchmark",
        ),
        (
            "table2_benchmarks",
            "R-Tab.2  tthread characteristics (software runtime)",
        ),
        (
            "fig5_speedup",
            "R-Fig.5  HEADLINE: speedup per benchmark (paper: max 5.9x, avg 46%)",
        ),
        (
            "fig6_breakdown",
            "R-Fig.6  elimination-only vs +overlap decomposition",
        ),
        (
            "fig7_spawn_overhead",
            "R-Fig.7  spawn-overhead sensitivity sweep",
        ),
        ("fig8_contexts", "R-Fig.8  hardware-context sweep"),
        (
            "fig9_granularity",
            "R-Fig.9  trigger granularity + false triggers",
        ),
        ("fig10_queue_size", "R-Fig.10 thread-queue capacity sweep"),
        (
            "table3_instructions",
            "R-Tab.3  dynamic instructions eliminated",
        ),
        ("fig11_energy", "R-Fig.11 activity-based energy proxy"),
        (
            "fig12_wallclock",
            "R-Fig.12 measured wall-clock of the software runtime",
        ),
        (
            "fig13_memory_latency",
            "R-Fig.13 memory-latency sensitivity (extension)",
        ),
        (
            "ablation_suppression",
            "Abl.1    silent-store suppression on/off",
        ),
        ("ablation_coalescing", "Abl.2    trigger coalescing on/off"),
        (
            "ablation_private_l1",
            "Abl.3    shared vs private L1 for tthread contexts",
        ),
        (
            "ablation_tst_capacity",
            "Abl.4    thread status table capacity sweep",
        ),
        ("ablation_prefetch", "Abl.5    next-line L1 prefetching"),
    ];
    for (name, what) in rows {
        println!("  {name:<28} {what}");
    }
    println!("\ncargo bench -p dtt-bench   Criterion micro (runtime ops) + macro (workloads)");
}
