//! Ablation: trigger coalescing in the software runtime's parallel
//! executor. Without coalescing, every changing store to a watched range
//! enqueues another instance of the tthread, flooding the bounded queue
//! and forcing overflow fallbacks and repeated executions.

use dtt_bench::Table;
use dtt_core::Config;
use dtt_workloads::{suite, Scale};

fn main() {
    // Test scale keeps the uncoalesced runs quick — the point is the
    // counter blow-up, not absolute time.
    let mut table = Table::new(vec![
        "benchmark".into(),
        "execs (coalesced)".into(),
        "execs (raw)".into(),
        "blow-up".into(),
        "enqueues raw".into(),
        "overflows raw".into(),
    ]);
    for w in suite(Scale::Test) {
        let cfg = Config::default().with_workers(2).with_queue_capacity(8);
        let with = w.run_dtt(cfg.clone());
        let without = w.run_dtt(cfg.with_coalescing(false));
        assert_eq!(
            with.digest,
            without.digest,
            "{}: coalescing changed results",
            w.name()
        );
        let e_with: u64 = with.tthreads.iter().map(|t| t.executions).sum();
        let e_without: u64 = without.tthreads.iter().map(|t| t.executions).sum();
        table.row(vec![
            w.name().into(),
            e_with.to_string(),
            e_without.to_string(),
            format!("{:.1}x", e_without as f64 / e_with.max(1) as f64),
            without.stats.counters().enqueues.to_string(),
            without.stats.counters().queue_overflows.to_string(),
        ]);
    }
    table.print("Ablation: trigger coalescing (parallel executor, test scale)");
    println!("coalescing merges repeated triggers of a pending tthread into one execution;");
    println!("without it the same recomputation runs once per triggering store.");
}
