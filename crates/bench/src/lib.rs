//! # dtt-bench — experiment harness
//!
//! Shared plumbing for the experiment binaries (`src/bin/*`), each of which
//! regenerates one reconstructed table or figure of the HPCA'11 evaluation
//! (see DESIGN.md §4 for the index). Binaries print aligned text tables to
//! stdout so their output can be diffed against EXPERIMENTS.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dtt_sim::{simulate, MachineConfig, SimMode, SimResult};
use dtt_trace::Trace;
use dtt_workloads::{suite, Scale, Workload};

/// Geometric mean of strictly positive values; `0` for an empty slice.
///
/// # Examples
///
/// ```
/// assert!((dtt_bench::geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
/// assert_eq!(dtt_bench::geomean(&[]), 0.0);
/// ```
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = xs.iter().map(|x| x.ln()).sum();
    (log_sum / xs.len() as f64).exp()
}

/// The scale every simulator-driven experiment runs at.
///
/// Train keeps traces in the hundred-thousand-to-few-million event range;
/// wall-clock experiments (R-Fig.12 and the Criterion benches) use
/// [`Scale::Reference`].
pub const EXPERIMENT_SCALE: Scale = Scale::Train;

/// Builds the full suite and the annotated trace of every workload.
pub fn suite_with_traces(scale: Scale) -> Vec<(Box<dyn Workload>, Trace)> {
    suite(scale)
        .into_iter()
        .map(|w| {
            let trace = w.trace();
            (w, trace)
        })
        .collect()
}

/// Replays one trace on both machines and returns `(baseline, dtt)`.
pub fn run_pair(cfg: &MachineConfig, trace: &Trace) -> (SimResult, SimResult) {
    (
        simulate(cfg, trace, SimMode::Baseline),
        simulate(cfg, trace, SimMode::Dtt),
    )
}

/// A minimal fixed-width table printer.
///
/// # Examples
///
/// ```
/// let mut t = dtt_bench::Table::new(vec!["bench".into(), "x".into()]);
/// t.row(vec!["mcf".into(), "5.9".into()]);
/// let text = t.render();
/// assert!(text.contains("mcf"));
/// assert!(text.contains("5.9"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<String>) -> Self {
        Table {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, cell)| {
                    if i == 0 {
                        format!("{:<w$}", cell, w = widths[i])
                    } else {
                        format!("{:>w$}", cell, w = widths[i])
                    }
                })
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table under a title banner.
    pub fn print(&self, title: &str) {
        println!("== {title} ==");
        println!("{}", self.render());
    }
}

/// One machine-readable benchmark result, written next to the text table
/// so CI can collect throughput numbers as artifacts and diff them across
/// commits without parsing the human-oriented output.
///
/// # Examples
///
/// ```
/// let r = dtt_bench::BenchRecord {
///     benchmark: "store_throughput".into(),
///     config: "threads=4 shards=256".into(),
///     ns_per_op: 12.5,
///     modeled_speedup: 3.8,
///     host_cores: 4,
/// };
/// assert!(r.to_json().starts_with("{\"benchmark\":\"store_throughput\""));
/// ```
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Benchmark name; also names the output file (`BENCH_<name>.json`).
    pub benchmark: String,
    /// Human-readable one-line description of the measured configuration.
    pub config: String,
    /// Single-thread cost of the benchmark's unit operation.
    pub ns_per_op: f64,
    /// Modeled multi-core speedup derived from measured single-thread
    /// costs (the serialization-bound methodology), so the number is
    /// meaningful even on a one-core CI runner.
    pub modeled_speedup: f64,
    /// Cores on the measuring host — readers must know how much to trust
    /// any *measured* scaling that informed the record.
    pub host_cores: usize,
}

/// Maps non-finite values (a zero-duration smoke run divides by zero) to
/// `0.0` so the emitted JSON stays parseable.
fn finite(x: f64) -> f64 {
    if x.is_finite() {
        x
    } else {
        0.0
    }
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            '\n' => vec!['\\', 'n'],
            c => vec![c],
        })
        .collect()
}

impl BenchRecord {
    /// Serializes the record as a single-line JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"benchmark\":\"{}\",\"config\":\"{}\",\"ns_per_op\":{:.3},\
             \"modeled_speedup\":{:.3},\"host_cores\":{}}}",
            json_escape(&self.benchmark),
            json_escape(&self.config),
            finite(self.ns_per_op),
            finite(self.modeled_speedup),
            self.host_cores
        )
    }

    /// Writes `BENCH_<benchmark>.json` into the current directory (the
    /// repo root under `cargo run`) and returns the path.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    pub fn write(&self) -> std::io::Result<std::path::PathBuf> {
        let path = std::path::PathBuf::from(format!("BENCH_{}.json", self.benchmark));
        std::fs::write(&path, self.to_json() + "\n")?;
        Ok(path)
    }
}

/// Formats a ratio as `N.NNx`.
pub fn fmt_speedup(x: f64) -> String {
    format!("{x:.2}x")
}

/// Formats a fraction as a percentage with one decimal.
pub fn fmt_pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_matches_hand_calc() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn table_aligns_columns() {
        let mut t = Table::new(vec!["a".into(), "value".into()]);
        t.row(vec!["longname".into(), "1".into()]);
        t.row(vec!["x".into(), "22".into()]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        // All rows have equal width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(vec!["a".into()]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn bench_record_json_is_stable_and_escaped() {
        let r = BenchRecord {
            benchmark: "dispatch_throughput".into(),
            config: "say \"hi\"".into(),
            ns_per_op: 1.0 / 0.0, // non-finite must not leak into the JSON
            modeled_speedup: 2.5,
            host_cores: 1,
        };
        assert_eq!(
            r.to_json(),
            "{\"benchmark\":\"dispatch_throughput\",\"config\":\"say \\\"hi\\\"\",\
             \"ns_per_op\":0.000,\"modeled_speedup\":2.500,\"host_cores\":1}"
        );
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_speedup(5.901), "5.90x");
        assert_eq!(fmt_pct(0.785), "78.5%");
    }

    #[test]
    fn run_pair_produces_both_modes() {
        let (w, trace) = &suite_with_traces(Scale::Test)[0];
        let cfg = MachineConfig::default();
        let (base, dtt) = run_pair(&cfg, trace);
        assert_eq!(base.mode, SimMode::Baseline);
        assert_eq!(dtt.mode, SimMode::Dtt);
        assert!(base.cycles > 0 && dtt.cycles > 0);
        assert_eq!(w.name(), "mcf");
    }
}
