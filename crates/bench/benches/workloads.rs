//! Macro-benchmarks: baseline vs DTT wall-clock for every workload in the
//! suite (the Criterion version of R-Fig.12, at train scale so a full
//! `cargo bench` stays quick).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dtt_core::Config;
use dtt_workloads::{suite, Scale};
use std::hint::black_box;

fn baseline_vs_dtt(c: &mut Criterion) {
    let mut group = c.benchmark_group("workloads");
    group.sample_size(10);
    for w in suite(Scale::Train) {
        group.bench_with_input(BenchmarkId::new("baseline", w.name()), &w, |b, w| {
            b.iter(|| black_box(w.run_baseline()))
        });
        group.bench_with_input(BenchmarkId::new("dtt", w.name()), &w, |b, w| {
            b.iter(|| black_box(w.run_dtt(Config::default()).digest))
        });
    }
    group.finish();
}

criterion_group!(benches, baseline_vs_dtt);
criterion_main!(benches);
