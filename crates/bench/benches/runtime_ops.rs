//! Microbenchmarks of the DTT runtime primitives: the tracked store path
//! (silent / changing / triggering), bulk transfers, trigger-table lookup
//! scaling, and the join fast path.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use dtt_core::{Config, Runtime};
use std::hint::black_box;

fn store_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("store");

    group.bench_function("silent", |b| {
        let mut rt = Runtime::new(Config::default(), ());
        let x = rt.alloc(7u64).unwrap();
        b.iter(|| rt.with(|ctx| ctx.set(black_box(x), 7)));
    });

    group.bench_function("changing_unwatched", |b| {
        let mut rt = Runtime::new(Config::default(), ());
        let x = rt.alloc(0u64).unwrap();
        let mut v = 0u64;
        b.iter(|| {
            v += 1;
            rt.with(|ctx| ctx.set(black_box(x), v));
        });
    });

    group.bench_function("changing_watched", |b| {
        let mut rt = Runtime::new(Config::default(), ());
        let x = rt.alloc(0u64).unwrap();
        let tt = rt.register("t", |_| {});
        rt.watch(tt, x.range()).unwrap();
        let mut v = 0u64;
        b.iter(|| {
            v += 1;
            rt.with(|ctx| ctx.set(black_box(x), v));
        });
    });

    group.finish();
}

fn bulk_transfers(c: &mut Criterion) {
    let mut group = c.benchmark_group("bulk");
    for n in [64usize, 1024, 16 * 1024] {
        group.bench_with_input(BenchmarkId::new("write_slice_silent", n), &n, |b, &n| {
            let mut rt = Runtime::new(Config::default(), ());
            let xs = rt.alloc_array::<u64>(n).unwrap();
            let values = vec![0u64; n];
            rt.with(|ctx| ctx.write_slice(xs, 0, &values));
            b.iter(|| rt.with(|ctx| ctx.write_slice(xs, 0, black_box(&values))));
        });
        group.bench_with_input(BenchmarkId::new("element_writes_silent", n), &n, |b, &n| {
            let mut rt = Runtime::new(Config::default(), ());
            let xs = rt.alloc_array::<u64>(n).unwrap();
            b.iter(|| {
                rt.with(|ctx| {
                    for i in 0..n {
                        ctx.write(xs, i, 0);
                    }
                })
            });
        });
        group.bench_with_input(BenchmarkId::new("read_all", n), &n, |b, &n| {
            let mut rt = Runtime::new(Config::default(), ());
            let xs = rt.alloc_array::<u64>(n).unwrap();
            b.iter_batched(
                Vec::new,
                |mut out| rt.with(|ctx| ctx.read_all_into(xs, &mut out)),
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn trigger_lookup_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("trigger_lookup");
    for watches in [1usize, 16, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(watches), &watches, |b, &w| {
            let mut rt = Runtime::new(Config::default(), ());
            let xs = rt.alloc_array::<u64>(w).unwrap();
            // One tthread per element, each watching its own cell: the
            // store below matches exactly one.
            for i in 0..w {
                let tt = rt.register(&format!("t{i}"), |_| {});
                rt.watch(tt, xs.range_of(i, i + 1)).unwrap();
            }
            let mut v = 0u64;
            b.iter(|| {
                v += 1;
                rt.with(|ctx| ctx.write(xs, 0, v));
                // Keep the queue state flat.
                rt.join_all().unwrap();
            });
        });
    }
    group.finish();
}

/// The per-store table probe itself: the allocating `lookup` (the
/// pre-scratch path, kept for tests/diagnostics) vs `lookup_with` into a
/// reusable generation-stamped scratch, on stores overlapping many watched
/// regions at once — the case the old quadratic `seen_regions.contains`
/// dedup made pathological.
fn trigger_lookup_path(c: &mut Criterion) {
    use dtt_core::addr::{Addr, AddrRange, Granularity};
    use dtt_core::trigger::{LookupScratch, TriggerTable};
    use dtt_core::tthread::StatusTable;

    let mut group = c.benchmark_group("trigger_lookup_path");
    for watchers in [4usize, 64] {
        let mut table = TriggerTable::new(Granularity::Word);
        let mut tst = StatusTable::new();
        // All watchers overlap one word so a store hits every one of them.
        for _ in 0..watchers {
            let tt = tst.push();
            table.watch(tt, AddrRange::new(Addr::new(0), 8));
        }
        let store = AddrRange::new(Addr::new(0), 8);
        group.bench_with_input(BenchmarkId::new("alloc", watchers), &store, |b, &store| {
            b.iter(|| black_box(table.lookup(black_box(store))))
        });
        group.bench_with_input(
            BenchmarkId::new("scratch", watchers),
            &store,
            |b, &store| {
                let mut scratch = LookupScratch::new();
                b.iter(|| {
                    table.lookup_with(black_box(store), &mut scratch);
                    black_box(scratch.hits().len())
                });
            },
        );
    }
    group.finish();
}

fn join_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("join");

    group.bench_function("skip_clean", |b| {
        let mut rt = Runtime::new(Config::default(), ());
        let tt = rt.register("t", |_| {});
        b.iter(|| rt.join(black_box(tt)).unwrap());
    });

    group.bench_function("trigger_and_run_inline", |b| {
        let mut rt = Runtime::new(Config::default(), 0u64);
        let x = rt.alloc(0u64).unwrap();
        let tt = rt.register("t", move |ctx| {
            let v = ctx.get(x);
            *ctx.user_mut() = v;
        });
        rt.watch(tt, x.range()).unwrap();
        let mut v = 0u64;
        b.iter(|| {
            v += 1;
            rt.write(x, v);
            rt.join(tt).unwrap()
        });
    });

    group.finish();
}

criterion_group!(
    benches,
    store_paths,
    bulk_transfers,
    trigger_lookup_scaling,
    trigger_lookup_path,
    join_paths
);
criterion_main!(benches);
