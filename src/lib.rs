//! # dtt — data-triggered threads
//!
//! The façade crate of the DTT reproduction workspace (Tseng & Tullsen,
//! *"Data-triggered threads: eliminating redundant computation"*, HPCA
//! 2011). It re-exports every subsystem under one roof:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `dtt-core` | the DTT runtime: tracked memory, triggers, executors |
//! | [`trace`] | `dtt-trace` | annotated program traces (+ binary file format) |
//! | [`profile`] | `dtt-profile` | redundant-load / silent-store / redundancy profilers |
//! | [`sim`] | `dtt-sim` | the trace-driven timing simulator of the proposed hardware |
//! | [`memsim`] | `dtt-memsim` | the cache-hierarchy substrate |
//! | [`obs`] | `dtt-obs` | observability: lifecycle collection, metrics, trace timelines |
//! | [`workloads`] | `dtt-workloads` | the fourteen SPEC-inspired benchmark kernels |
//!
//! See the repository README for the project overview, `examples/` for
//! runnable walkthroughs, and EXPERIMENTS.md for the paper-vs-measured
//! results.
//!
//! ```
//! use dtt::core::{Config, JoinOutcome, Runtime};
//!
//! let mut rt = Runtime::new(Config::default(), 0u64);
//! let cell = rt.alloc(0u32)?;
//! let double = rt.register("double", move |ctx| {
//!     let v = ctx.get(cell);
//!     *ctx.user_mut() = 2 * v as u64;
//! });
//! rt.watch(double, cell.range())?;
//!
//! rt.write(cell, 21);
//! assert_eq!(rt.join(double)?, JoinOutcome::RanInline);
//! assert_eq!(rt.with(|ctx| *ctx.user()), 42);
//! rt.write(cell, 21); // silent store
//! assert_eq!(rt.join(double)?, JoinOutcome::Skipped);
//! # Ok::<(), dtt::core::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dtt_core as core;
pub use dtt_memsim as memsim;
pub use dtt_obs as obs;
pub use dtt_profile as profile;
pub use dtt_sim as sim;
pub use dtt_trace as trace;
pub use dtt_workloads as workloads;
