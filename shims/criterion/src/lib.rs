//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace benches use — [`Criterion`],
//! [`BenchmarkId`], [`BatchSize`], benchmark groups, `iter`/`iter_batched`,
//! and the [`criterion_group!`]/[`criterion_main!`] macros — backed by a
//! simple wall-clock harness: each benchmark is auto-calibrated to a target
//! runtime, timed over a fixed number of samples, and the median ns/iter is
//! printed. No statistics, plots, or baselines; just comparable numbers in
//! environments without crates.io access.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// How per-iteration setup values are batched in
/// [`Bencher::iter_batched`]. All variants behave identically here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// A benchmark identifier made of a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id like `"name/param"`.
    pub fn new<P: fmt::Display>(name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_count: usize,
}

impl Bencher {
    fn new(sample_count: usize) -> Self {
        Bencher {
            samples: Vec::new(),
            iters_per_sample: 0,
            sample_count,
        }
    }

    /// Times `routine`, called repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        self.iter_batched(|| (), |()| routine(), BatchSize::SmallInput);
    }

    /// Times `routine` over fresh values from `setup`; only the routine is
    /// on the clock.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Calibrate: grow the per-sample iteration count until one sample
        // takes ~1ms, so cheap routines aren't all timer noise.
        let mut iters = 1u64;
        loop {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                std::hint::black_box(routine(input));
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                break;
            }
            iters = iters.saturating_mul(2);
        }

        self.iters_per_sample = iters;
        self.samples.clear();
        for _ in 0..self.sample_count {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                std::hint::black_box(routine(input));
            }
            self.samples.push(start.elapsed());
        }
    }

    fn median_ns_per_iter(&self) -> f64 {
        if self.samples.is_empty() || self.iters_per_sample == 0 {
            return 0.0;
        }
        let mut ns: Vec<u128> = self.samples.iter().map(Duration::as_nanos).collect();
        ns.sort_unstable();
        ns[ns.len() / 2] as f64 / self.iters_per_sample as f64
    }
}

fn run_one(label: &str, sample_count: usize, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher::new(sample_count);
    f(&mut bencher);
    println!(
        "bench {label:<48} {:>14.1} ns/iter ({} samples x {} iters)",
        bencher.median_ns_per_iter(),
        sample_count,
        bencher.iters_per_sample,
    );
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    sample_count: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_count: 20 }
    }
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        run_one(name, self.sample_count, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_count: self.sample_count,
            _criterion: self,
        }
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_count: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.max(2);
        self
    }

    /// Runs a benchmark inside this group.
    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        run_one(&format!("{}/{name}", self.name), self.sample_count, f);
        self
    }

    /// Runs a parameterized benchmark; the closure receives the input.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(&format!("{}/{id}", self.name), self.sample_count, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `fn main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("grouped");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::new("sum", 8), &8u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_with_input(BenchmarkId::from_parameter(3), &3u64, |b, &n| {
            b.iter_batched(|| vec![0u8; n as usize], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }

    criterion_group!(benches, trivial);

    #[test]
    fn harness_runs_groups() {
        benches();
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
