//! Offline stand-in for the `parking_lot` crate.
//!
//! This workspace builds in environments with no crates.io access, so the
//! handful of `parking_lot` APIs the runtime uses are re-implemented here on
//! top of `std::sync`. Semantics match `parking_lot` where it matters to the
//! callers:
//!
//! * locks are **non-poisoning** — a panic while holding a guard does not
//!   wedge later lockers (we recover the inner guard from the std poison
//!   error);
//! * [`Mutex::lock`], [`RwLock::read`] and [`RwLock::write`] return guards
//!   directly, not `Result`s;
//! * [`Condvar::wait`] takes `&mut MutexGuard` instead of consuming the
//!   guard.
//!
//! Only the surface the `dtt` workspace actually calls is provided.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Deref, DerefMut};
use std::sync;

/// A mutual-exclusion lock with `parking_lot`'s non-poisoning interface.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a lock owning `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(
                self.inner
                    .lock()
                    .unwrap_or_else(sync::PoisonError::into_inner),
            ),
        }
    }

    /// Attempts to acquire the lock without blocking, matching
    /// `parking_lot::Mutex::try_lock`'s `Option` return (a poisoned lock
    /// is treated as acquired, consistent with [`Mutex::lock`]).
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: Some(guard) }),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }
}

/// RAII guard returned by [`Mutex::lock`].
///
/// The inner std guard lives in an `Option` so [`Condvar::wait`] can move it
/// out and back without consuming this wrapper.
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard moved during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard moved during wait")
    }
}

/// A condition variable pairing with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Atomically releases the guarded lock and blocks until notified; the
    /// lock is reacquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let taken = guard.inner.take().expect("guard moved during wait");
        let reacquired = self
            .inner
            .wait(taken)
            .unwrap_or_else(sync::PoisonError::into_inner);
        guard.inner = Some(reacquired);
    }

    /// Atomically releases the guarded lock and blocks until notified or the
    /// timeout elapses; the lock is reacquired before returning. Returns
    /// `true` if the wait timed out (matching `parking_lot`'s
    /// `WaitTimeoutResult::timed_out`).
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: std::time::Duration) -> bool {
        let taken = guard.inner.take().expect("guard moved during wait");
        let (reacquired, result) = self
            .inner
            .wait_timeout(taken, timeout)
            .unwrap_or_else(sync::PoisonError::into_inner);
        guard.inner = Some(reacquired);
        result.timed_out()
    }

    /// Wakes one blocked waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every blocked waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// A reader-writer lock with `parking_lot`'s non-poisoning interface.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock owning `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self
                .inner
                .read()
                .unwrap_or_else(sync::PoisonError::into_inner),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self
                .inner
                .write()
                .unwrap_or_else(sync::PoisonError::into_inner),
        }
    }
}

/// RAII guard returned by [`RwLock::read`].
#[derive(Debug)]
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// RAII guard returned by [`RwLock::write`].
#[derive(Debug)]
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
        assert_eq!(l.into_inner(), vec![1, 2]);
    }

    #[test]
    fn condvar_signals_across_threads() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let h = thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut guard = lock.lock();
            while !*guard {
                cv.wait(&mut guard);
            }
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        h.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out_and_reacquires() {
        let lock = Mutex::new(7);
        let cv = Condvar::new();
        let mut guard = lock.lock();
        let timed_out = cv.wait_for(&mut guard, std::time::Duration::from_millis(5));
        assert!(timed_out);
        // The guard is live again after the timed wait.
        *guard += 1;
        drop(guard);
        assert_eq!(*lock.lock(), 8);
    }

    #[test]
    fn poisoned_mutex_recovers() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
