//! Offline stand-in for the `rand` crate (0.8 call surface).
//!
//! The workload generators only need a deterministic seeded generator with
//! `StdRng::seed_from_u64` and `Rng::gen_range` over integer and float
//! ranges, so that is all this shim provides. The generator is SplitMix64 —
//! statistically fine for synthetic input generation, stable across
//! platforms, and obviously deterministic. It intentionally does **not**
//! match upstream `StdRng`'s stream; workloads only require determinism,
//! not a particular sequence.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level 64-bit generator interface.
pub trait RngCore {
    /// Produces the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface: construct a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling interface, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<G: RngCore> Rng for G {}

/// A range that knows how to sample a uniform value from itself.
pub trait SampleRange<T> {
    /// Draws one uniform sample using `rng`.
    fn sample_single<G: RngCore>(self, rng: &mut G) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<G: RngCore>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<G: RngCore>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<G: RngCore>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // 53 uniform mantissa bits in [0, 1).
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                let (lo, hi) = (self.start as f64, self.end as f64);
                (lo + unit * (hi - lo)) as $t
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Namespace mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn samples_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(-50i64..50);
            assert!((-50..50).contains(&v));
            let u = rng.gen_range(b'a'..=b'f');
            assert!((b'a'..=b'f').contains(&u));
            let f = rng.gen_range(-0.25f64..0.25);
            assert!((-0.25..0.25).contains(&f));
            let x = rng.gen_range(0usize..3);
            assert!(x < 3);
        }
    }

    #[test]
    fn covers_the_whole_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.gen_range(5u32..5);
    }
}
