//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset of the proptest API this workspace's property tests
//! use: the [`proptest!`] macro (with an optional
//! `#![proptest_config(...)]` header), `prop_assert!`/`prop_assert_eq!`,
//! range/tuple/`Just`/`prop_oneof!`/`prop_map`/`prop::collection::vec`
//! strategies, `prop::bool::ANY` and `any::<T>()`.
//!
//! Differences from real proptest, on purpose:
//!
//! * inputs are drawn from a seeded deterministic generator (seeded from the
//!   test name), so runs are reproducible without a persistence file;
//! * failing cases are **not shrunk** — the panic message carries the case
//!   number and the test rerun reproduces it exactly;
//! * `prop_assert*` is plain `assert*` (no rejection bookkeeping).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic SplitMix64 generator driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator seeded from an arbitrary byte string (we use the
    /// test function name), so every test gets a distinct but stable stream.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Produces the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "cannot sample an empty range");
        self.next_u64() % bound
    }
}

/// Execution configuration for a [`proptest!`] block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases generated per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values of an associated type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { strategy: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy, as produced by [`Strategy::boxed`].
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy always yielding a clone of its value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.strategy.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample an empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample an empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

/// Weighted union of type-erased strategies; built by [`prop_oneof!`].
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    /// Builds a union from `(weight, strategy)` arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty or all weights are zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total_weight: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total_weight > 0, "union needs at least one weighted arm");
        Union { arms, total_weight }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total_weight);
        for (weight, strategy) in &self.arms {
            let weight = u64::from(*weight);
            if pick < weight {
                return strategy.generate(rng);
            }
            pick -= weight;
        }
        unreachable!("weights sum to total_weight");
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over every value of `T`; see [`any`].
pub struct AnyStrategy<T>(PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for any value of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s with a length drawn from a range; see [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates vectors whose length is uniform in `len` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Boolean strategies (`prop::bool`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy yielding either boolean with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The uniform boolean strategy (`prop::bool::ANY`).
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Everything a property test file needs, mirroring
/// `proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy, Just,
        ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property test (plain `assert!` here).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test (plain `assert_eq!` here).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Builds a [`Union`] strategy from weighted (`w => strategy`) or
/// unweighted arms.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(((($weight) as u32), $crate::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strategy))),+
        ])
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over random strategy draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (config = ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let run = || {
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                    $body
                };
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(run));
                if let Err(payload) = outcome {
                    eprintln!(
                        "proptest case {}/{} of {} failed (deterministic seed; rerun reproduces it)",
                        case + 1,
                        config.cases,
                        stringify!($name),
                    );
                    std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_unions_sample_lawfully() {
        let mut rng = crate::TestRng::from_name("sampling");
        let union = prop_oneof![2 => 0u32..10, 1 => 90u32..100];
        let mut low = 0;
        let mut high = 0;
        for _ in 0..300 {
            let v = union.generate(&mut rng);
            assert!(v < 10 || (90..100).contains(&v));
            if v < 10 {
                low += 1;
            } else {
                high += 1;
            }
        }
        assert!(low > high, "weighted arm should dominate: {low} vs {high}");
    }

    #[test]
    fn vec_strategy_respects_length_bounds() {
        let mut rng = crate::TestRng::from_name("lengths");
        let s = prop::collection::vec(any::<u8>(), 3..7);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((3..7).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_and_runs(
            x in 0u64..100,
            (a, b) in (0u8..4, prop::bool::ANY),
            v in prop::collection::vec(0i32..3, 0..5),
        ) {
            prop_assert!(x < 100);
            prop_assert!(a < 4);
            let _ = b;
            prop_assert!(v.len() < 5);
            prop_assert_eq!(v.iter().filter(|&&e| e > 2).count(), 0);
        }
    }
}
